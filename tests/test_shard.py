"""Tests for ``repro.shard`` — row-sharded SpMV/SpMM execution.

The headline guarantee under test: sharded execution is **bit-identical**
to the single-plan path for every shard count, because shard boundaries
never split a row and the gather is pure concatenation.
"""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix, choose_shards, dasp_spmv, dasp_spmm
from repro.gpu import A100
from repro.serve import SpMVServer, plan_nbytes
from repro.shard import (ShardedPlan, build_sharded_plan, dasp_spmm_sharded,
                         dasp_spmv_sharded, lpt_makespan, shard_candidates,
                         shard_csr, sharded_batch_cost)
from tests.conftest import ROW_PROFILES, random_csr


class TestShardCsr:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
    def test_boundaries_cover_all_rows(self, rng, shards):
        csr = random_csr(97, 50, rng)
        starts = shard_csr(csr, shards)
        assert starts[0] == 0 and starts[-1] == csr.shape[0]
        assert np.all(np.diff(starts) >= 1)  # non-empty row bands
        assert len(starts) == shards + 1

    def test_balances_nnz(self, rng):
        heavy = ROW_PROFILES["long"]
        csr = random_csr(64, 700, rng, row_len_sampler=heavy)
        starts = shard_csr(csr, 4)
        per = [csr.indptr[b] - csr.indptr[a]
               for a, b in zip(starts[:-1], starts[1:])]
        assert max(per) <= 2 * (csr.nnz / 4)  # rough balance

    def test_more_shards_than_rows_clamped(self, rng):
        csr = random_csr(3, 10, rng)
        starts = shard_csr(csr, 16)
        assert starts[-1] == 3 and len(starts) <= 4

    def test_invalid_shards_rejected(self, rng):
        with pytest.raises(ValidationError):
            shard_csr(random_csr(5, 5, rng), 0)


class TestBitDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_spmv_byte_identical(self, profiled_matrix, rng, shards):
        x = rng.uniform(-1, 1, profiled_matrix.shape[1])
        base = dasp_spmv(DASPMatrix.from_csr(profiled_matrix), x)
        y = dasp_spmv_sharded(profiled_matrix, x, shards=shards)
        np.testing.assert_array_equal(y, base)  # bitwise, not allclose

    @pytest.mark.parametrize("shards", [2, 4])
    def test_spmm_byte_identical(self, rng, shards):
        csr = random_csr(80, 120, rng,
                         row_len_sampler=ROW_PROFILES["mixed"])
        X = rng.uniform(-1, 1, (120, 8))
        base = dasp_spmm(DASPMatrix.from_csr(csr), X)
        Y = dasp_spmm_sharded(csr, X, shards=shards)
        np.testing.assert_array_equal(Y, base)

    def test_accepts_prebuilt_plan(self, rng):
        csr = random_csr(60, 90, rng)
        plan = build_sharded_plan(csr, 3)
        x = rng.uniform(-1, 1, 90)
        np.testing.assert_array_equal(
            dasp_spmv_sharded(plan, x),
            dasp_spmv(DASPMatrix.from_csr(csr), x))


class TestShardedPlan:
    def test_structure(self, rng):
        csr = random_csr(100, 70, rng)
        plan = build_sharded_plan(csr, 4)
        assert isinstance(plan, ShardedPlan)
        assert plan.n_shards == 4
        assert plan.shape == csr.shape
        assert plan.nnz == csr.nnz
        assert sum(s.n_rows for s in plan.shards) == 100
        assert plan_nbytes(plan) == sum(plan_nbytes(s.dasp)
                                        for s in plan.shards)

    def test_modeled_cost_monotone_in_workers(self, rng):
        csr = random_csr(128, 700, rng,
                         row_len_sampler=ROW_PROFILES["long"])
        plan = build_sharded_plan(csr, 4)
        c1 = sharded_batch_cost(plan, A100, k=8, workers=1)
        c4 = sharded_batch_cost(plan, A100, k=8, workers=4)
        assert c4.makespan < c1.makespan
        assert c1.serial == c4.serial  # workers change packing, not work

    def test_lpt_makespan(self):
        assert lpt_makespan([3.0, 3.0, 2.0, 2.0], 2) == pytest.approx(5.0)
        assert lpt_makespan([4.0], 8) == pytest.approx(4.0)
        assert lpt_makespan([], 2) == 0.0


class TestChooseShards:
    def test_returns_tune_result(self, rng):
        csr = random_csr(96, 700, rng,
                         row_len_sampler=ROW_PROFILES["long"])
        res = choose_shards(csr, 4)
        assert res.parameter == "shards"
        assert res.best_value in shard_candidates(4, csr.shape[0])
        assert res.best_value >= 1
        # modeled times cover every candidate
        assert set(res.times) == set(shard_candidates(4, csr.shape[0]))

    def test_single_worker_prefers_unsharded(self, rng):
        csr = random_csr(60, 80, rng)
        assert choose_shards(csr, 1).best_value == 1


class TestServerSharded:
    def test_server_s2_byte_equal_to_unsharded(self, rng):
        """Tier-1 smoke: a 2-shard server returns byte-identical results
        to the unsharded server for the same requests."""
        csr = random_csr(90, 130, rng,
                         row_len_sampler=ROW_PROFILES["mixed"])
        xs = [rng.uniform(-1, 1, 130) for _ in range(4)]

        def run(**kw):
            with SpMVServer(max_batch=4, flush_timeout_s=0.01,
                            workers=2, **kw) as s:
                fp = s.register(csr)
                futs = [s.submit(fp, x) for x in xs]
                return [f.result(timeout=10.0) for f in futs]

        base = run()
        sharded = run(shards=2)
        for y0, y1 in zip(base, sharded):
            np.testing.assert_array_equal(y1, y0)

    def test_server_shards_auto_accepted(self, rng):
        csr = random_csr(40, 60, rng)
        x = rng.uniform(-1, 1, 60)
        with SpMVServer(max_batch=2, flush_timeout_s=0.01, workers=2,
                        shards="auto") as s:
            fp = s.register(csr)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=10.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)

    def test_server_rejects_bad_shards(self):
        with pytest.raises((ValidationError, ValueError)):
            SpMVServer(shards=0)
        with pytest.raises((ValidationError, ValueError)):
            SpMVServer(shards="many")
