"""Tests for the bounded-queue scheduler (ordering, backpressure)."""

import threading
import time

import numpy as np
import pytest

from repro.serve import Batch, QueueFullError, Scheduler, SpMVRequest


def batch(fp, i, formed=0.0):
    r = SpMVRequest(req_id=i, fingerprint=fp, x=np.zeros(2), arrival_s=formed)
    return Batch(fingerprint=fp, requests=[r], formed_s=formed)


class TestExecution:
    def test_executes_everything(self):
        done = []
        with Scheduler(lambda b: done.append(b.requests[0].req_id),
                       workers=3) as sched:
            for i in range(20):
                sched.submit(batch(f"m{i % 4}", i))
            assert sched.drain(timeout=5.0)
        assert sorted(done) == list(range(20))
        assert sched.n_executed == 20

    def test_per_matrix_fifo(self):
        """Same-matrix batches execute in submission order even with
        several workers racing."""
        order = {"A": [], "B": []}
        lock = threading.Lock()

        def execute(b):
            time.sleep(0.002 if b.fingerprint == "A" else 0.001)
            with lock:
                order[b.fingerprint].append(b.requests[0].req_id)

        with Scheduler(execute, workers=4) as sched:
            for i in range(8):
                sched.submit(batch("A", i))
                sched.submit(batch("B", 100 + i))
            assert sched.drain(timeout=5.0)
        assert order["A"] == list(range(8))
        assert order["B"] == [100 + i for i in range(8)]

    def test_cross_matrix_parallelism(self):
        """Batches of different matrices overlap across workers."""
        active = []
        peak = []
        lock = threading.Lock()

        def execute(b):
            with lock:
                active.append(b.fingerprint)
                peak.append(len(active))
            time.sleep(0.01)
            with lock:
                active.remove(b.fingerprint)

        with Scheduler(execute, workers=4) as sched:
            for i in range(4):
                sched.submit(batch(f"m{i}", i))
            assert sched.drain(timeout=5.0)
        assert max(peak) >= 2

    def test_error_callback(self):
        failed = []

        def execute(b):
            raise RuntimeError("boom")

        with Scheduler(execute, workers=1,
                       on_error=lambda b, e: failed.append((b, e))) as sched:
            sched.submit(batch("A", 0))
            assert sched.drain(timeout=5.0)
        assert len(failed) == 1 and isinstance(failed[0][1], RuntimeError)


class TestBackpressure:
    def _blocked_scheduler(self, policy, shed=None, depth=2):
        gate = threading.Event()

        def execute(b):
            gate.wait(5.0)

        sched = Scheduler(execute, workers=1, queue_depth=depth,
                          policy=policy, on_shed=shed)
        return sched, gate

    def test_reject_when_full(self):
        sched, gate = self._blocked_scheduler("reject")
        try:
            sched.submit(batch("A", 0))     # taken by the worker
            time.sleep(0.05)
            sched.submit(batch("A", 1))     # queued
            sched.submit(batch("A", 2))     # queued (depth 2)
            with pytest.raises(QueueFullError):
                sched.submit(batch("A", 3))
        finally:
            gate.set()
            sched.close(timeout=5.0)

    def test_shed_oldest(self):
        shed = []
        sched, gate = self._blocked_scheduler("shed", shed=shed.append)
        try:
            sched.submit(batch("A", 0))
            time.sleep(0.05)
            sched.submit(batch("A", 1, formed=1.0))
            sched.submit(batch("B", 2, formed=2.0))
            sched.submit(batch("B", 3, formed=3.0))  # sheds batch 1
        finally:
            gate.set()
            sched.close(timeout=5.0)
        assert [b.requests[0].req_id for b in shed] == [1]
        assert sched.n_shed_batches == 1

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Scheduler(lambda b: None, policy="drop-newest")


class TestShutdown:
    def test_close_idempotent(self):
        sched = Scheduler(lambda b: None)
        sched.close()
        sched.close()

    def test_close_without_drain_drops_queue(self):
        gate = threading.Event()
        ran = []

        def execute(b):
            gate.wait(5.0)
            ran.append(b)

        sched = Scheduler(execute, workers=1, queue_depth=8)
        sched.submit(batch("A", 0))
        time.sleep(0.05)
        sched.submit(batch("A", 1))
        gate.set()
        sched.close(drain=False, timeout=5.0)
        assert sched.backlog() == 0


class TestCloseRace:
    def test_racing_submit_executes_or_fails_loudly(self):
        """Regression: ``close(drain=True)`` used to drain first and set
        ``_closed`` after, so a submission landing between the two was
        silently abandoned by the exiting workers.  Now the flag flips
        before the drain: a racing submit either gets executed or raises
        ``scheduler is closed`` — never vanishes."""
        for _ in range(20):
            executed = []
            ok = []

            def execute(b):
                executed.append(b.requests[0].req_id)
                if b.requests[0].req_id == 0:
                    # straggler submitted from inside an execute callback,
                    # racing with close(drain=True) below
                    try:
                        sched.submit(batch("B", 1))
                        ok.append(True)
                    except Exception:
                        ok.append(False)

            sched = Scheduler(execute, workers=2)
            sched.submit(batch("A", 0))
            sched.close(drain=True, timeout=5.0)
            assert executed and executed[0] == 0
            assert ok, "straggler submit never ran"
            if ok[0]:
                assert 1 in executed, "accepted submit was dropped"

    def test_close_is_idempotent(self):
        sched = Scheduler(lambda b: None, workers=1)
        sched.submit(batch("A", 0))
        sched.close(drain=True, timeout=5.0)
        sched.close(drain=True, timeout=5.0)  # second close is a no-op
        assert sched.n_executed == 1


class TestPrunedCounter:
    def test_pruned_batches_counted_separately(self):
        """Pruned-empty batches are handled (for drain) but must not
        inflate ``executed_total``."""
        def prune(b):
            return None if b.fingerprint == "drop" else b

        done = []
        with Scheduler(lambda b: done.append(b.fingerprint),
                       workers=2, prune=prune) as sched:
            for i in range(6):
                sched.submit(batch("drop" if i % 2 else "keep", i))
            assert sched.drain(timeout=5.0)
        assert sched.n_executed == 3
        assert sched.n_pruned == 3
        assert sched.n_executed + sched.n_pruned == 6
        assert done == ["keep"] * 3
        assert sched.obs.counter("serve.scheduler.executed_total").value == 3
        assert sched.obs.counter("serve.scheduler.pruned_total").value == 3


class TestGauges:
    def test_queue_depth_gauge_returns_to_zero_after_drain(self):
        """The gauge tracks dequeues (and pruning), not just enqueues —
        a drained scheduler must read 0, not its high-water mark."""
        from repro.obs import Obs

        obs = Obs()
        gate = threading.Event()
        with Scheduler(lambda b: gate.wait(5.0),
                       workers=1, queue_depth=8, obs=obs) as sched:
            depth = obs.registry.gauge("serve.scheduler.queue_depth")
            for i in range(6):
                sched.submit(batch(f"m{i}", i))
            assert depth.value > 0  # backlog while the worker is gated
            gate.set()
            assert sched.drain(timeout=5.0)
            assert depth.value == 0
            assert sched.backlog() == 0
            assert obs.registry.gauge(
                "serve.scheduler.inflight").value == 0

    def test_queue_depth_gauge_accounts_pruned_batches(self):
        from repro.obs import Obs

        obs = Obs()
        with Scheduler(lambda b: None, workers=1, prune=lambda b: None,
                       obs=obs) as sched:
            for i in range(5):
                sched.submit(batch("drop", i))
            assert sched.drain(timeout=5.0)
            assert obs.registry.gauge(
                "serve.scheduler.queue_depth").value == 0

    def test_gauge_zero_after_close_without_drain(self):
        from repro.obs import Obs

        obs = Obs()
        gate = threading.Event()
        sched = Scheduler(lambda b: gate.wait(5.0), workers=1,
                          queue_depth=8, obs=obs)
        for i in range(4):
            sched.submit(batch(f"m{i}", i))
        gate.set()
        sched.close(drain=False)
        assert obs.registry.gauge(
            "serve.scheduler.queue_depth").value == 0


class TestSubmitTask:
    def test_task_runs_on_worker(self):
        ran = threading.Event()
        with Scheduler(lambda b: None, workers=1) as sched:
            assert sched.submit_task(ran.set)
            assert ran.wait(timeout=5.0)

    def test_tasks_preferred_over_batches(self):
        """A helper task jumps ahead of queued batches so shard fan-out
        is never stuck behind other work."""
        order = []
        gate = threading.Event()

        def execute(b):
            gate.wait(timeout=5.0)
            order.append(("batch", b.requests[0].req_id))

        with Scheduler(execute, workers=1) as sched:
            sched.submit(batch("A", 0))
            time.sleep(0.05)  # worker is now blocked inside execute
            sched.submit(batch("B", 1))
            sched.submit_task(lambda: order.append(("task", None)))
            gate.set()
            assert sched.drain(timeout=5.0)
        assert order[0] == ("batch", 0)
        assert order.index(("task", None)) < order.index(("batch", 1))

    def test_submit_task_after_close_returns_false(self):
        sched = Scheduler(lambda b: None, workers=1)
        sched.close(drain=True, timeout=5.0)
        assert sched.submit_task(lambda: None) is False

    def test_task_exception_does_not_kill_worker(self):
        def boom():
            raise RuntimeError("helper blew up")

        done = []
        with Scheduler(lambda b: done.append(b.requests[0].req_id),
                       workers=1) as sched:
            sched.submit_task(boom)
            sched.submit(batch("A", 7))
            assert sched.drain(timeout=5.0)
        assert done == [7]
