"""Additional property-based tests: new formats, SpMM, merge partition,
CSR5 structure and solver behaviour under generated inputs."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import build_csr5, build_lsrb, merge_path_partition
from repro.core import dasp_spmm
from repro.formats import CSCMatrix, DIAMatrix, HYBMatrix
from tests.test_property_hypothesis import sparse_matrices

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@given(sparse_matrices(max_rows=30, max_cols=80))
@settings(**SETTINGS)
def test_csc_roundtrip_and_transpose(csr):
    csc = CSCMatrix.from_csr(csr)
    assert np.allclose(csc.to_csr().to_dense(), csr.to_dense())
    dense = csr.to_dense()
    y = np.arange(csr.shape[0], dtype=np.float64)
    assert np.allclose(csc.rmatvec(y), dense.T @ y, rtol=1e-10, atol=1e-12)


@given(sparse_matrices(max_rows=24, max_cols=48))
@settings(**SETTINGS)
def test_dia_roundtrip(csr):
    dia = DIAMatrix.from_csr(csr)
    assert np.allclose(dia.to_csr().to_dense(), csr.to_dense())
    x = np.linspace(-1, 1, csr.shape[1])
    assert np.allclose(dia.matvec(x), csr.matvec(x), rtol=1e-10, atol=1e-12)


@given(sparse_matrices(max_rows=30, max_cols=60), st.integers(0, 12))
@settings(**SETTINGS)
def test_hyb_any_width_correct(csr, width):
    hyb = HYBMatrix.from_csr(csr, width=width)
    assert hyb.nnz == csr.nnz
    x = np.linspace(-1, 1, csr.shape[1])
    assert np.allclose(hyb.matvec(x), csr.matvec(x), rtol=1e-10, atol=1e-12)
    assert np.allclose(hyb.to_csr().to_dense(), csr.to_dense())


@given(sparse_matrices(max_rows=30, max_cols=120),
       st.integers(1, 9), st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_spmm_matches_columnwise_spmv(csr, k, seed):
    X = np.random.default_rng(seed).standard_normal((csr.shape[1], k))
    Y = dasp_spmm(csr, X)
    ref = np.stack([csr.matvec(X[:, j]) for j in range(k)], axis=1)
    assert np.allclose(Y, ref, rtol=1e-9, atol=1e-11)


@given(sparse_matrices(max_rows=40, max_cols=60), st.integers(1, 50))
@settings(**SETTINGS)
def test_merge_partition_invariants(csr, parts):
    rs, ns = merge_path_partition(csr.indptr, csr.nnz, parts)
    assert rs.size == ns.size == parts + 1
    assert rs[0] == 0 and ns[0] == 0
    assert rs[-1] == csr.shape[0] and ns[-1] == csr.nnz
    assert np.all(np.diff(rs) >= 0) and np.all(np.diff(ns) >= 0)
    items = np.diff(rs) + np.diff(ns)
    if csr.shape[0] + csr.nnz >= parts:
        assert items.max() - items.min() <= 2


@given(sparse_matrices(max_rows=40, max_cols=60))
@settings(**SETTINGS)
def test_csr5_tile_storage_conserves_payload(csr):
    plan = build_csr5(csr)
    recovered = (plan.tile_val.reshape(plan.ntiles, plan.sigma, plan.omega)
                 .transpose(0, 2, 1).reshape(-1))[:csr.nnz] if plan.ntiles \
        else plan.tile_val[:0]
    assert np.array_equal(recovered, csr.data)
    # flags mark exactly the nonempty rows
    assert int(plan.bit_flag.sum()) == int(
        np.count_nonzero(csr.row_lengths() > 0))


@given(sparse_matrices(max_rows=40, max_cols=60), st.integers(4, 128))
@settings(**SETTINGS)
def test_lsrb_segments_cover_all_nonzeros(csr, segment):
    plan = build_lsrb(csr, segment=segment)
    if csr.nnz:
        assert plan.nsegments == -(-csr.nnz // segment)
        assert plan.seg_first_row[0] >= 0
    else:
        assert plan.nsegments == 0


@given(sparse_matrices(max_rows=20, max_cols=40))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_exact_spmv_close_to_float64(csr):
    from repro.analysis import exact_spmv

    x = np.linspace(-1, 1, csr.shape[1])
    assert np.allclose(exact_spmv(csr, x), csr.matvec(x),
                       rtol=1e-10, atol=1e-12)
