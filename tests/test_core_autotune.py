"""Tests for the MAX_LEN / threshold tuning helpers."""

import numpy as np

from repro.core import (
    MAX_LEN_CANDIDATES,
    THRESHOLD_CANDIDATES,
    tune_max_len,
    tune_threshold,
)
from tests.conftest import random_csr


class TestTuneMaxLen:
    def test_returns_all_candidates(self, rng):
        csr = random_csr(60, 600, rng)
        result = tune_max_len(csr, "A100")
        assert set(result.times) == set(MAX_LEN_CANDIDATES)

    def test_best_is_minimum(self, rng):
        csr = random_csr(60, 600, rng)
        result = tune_max_len(csr, "A100")
        assert result.best_time == min(result.times.values())
        assert result.times[result.best_value] == result.best_time

    def test_custom_candidates(self, rng):
        csr = random_csr(30, 300, rng)
        result = tune_max_len(csr, "A100", candidates=(128, 256))
        assert set(result.times) == {128, 256}

    def test_parameter_name(self, rng):
        assert tune_max_len(random_csr(10, 50, rng), "A100").parameter == "max_len"


class TestTuneThreshold:
    def test_returns_all_candidates(self, rng):
        csr = random_csr(60, 600, rng,
                         row_len_sampler=lambda r, m: r.integers(5, 100, m))
        result = tune_threshold(csr, "A100")
        assert set(result.times) == set(THRESHOLD_CANDIDATES)

    def test_all_times_positive(self, rng):
        csr = random_csr(40, 400, rng)
        result = tune_threshold(csr, "A100")
        assert all(t > 0 for t in result.times.values())

    def test_extreme_threshold_shifts_storage(self, rng):
        """threshold=1.0 puts (almost) everything in the irregular part;
        a low threshold packs almost everything into MMA blocks.  Both
        must remain correct; times just differ."""
        csr = random_csr(48, 500, rng,
                         row_len_sampler=lambda r, m: r.integers(6, 60, m))
        result = tune_threshold(csr, "A100", candidates=(0.25, 1.0))
        assert len(result.times) == 2
