"""Overload-control primitive tests (repro.overload)."""

import threading

import pytest

from repro.obs import Obs
from repro.overload import (
    PRIORITIES,
    AdmissionConfig,
    AdmissionController,
    AdmissionRejectedError,
    HedgeConfig,
    HedgePair,
    LatencyTracker,
    OverloadConfig,
    OverloadContext,
    RetryBudget,
    RetryBudgetConfig,
    TokenBucket,
)
from repro.resilience import ResilienceError


class TestTokenBucket:
    def test_burst_then_refill(self):
        b = TokenBucket(rate=10.0, burst=2.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)           # burst exhausted
        assert b.try_take(0.1)               # 1 token refilled
        assert not b.try_take(0.1)

    def test_tokens_cap_at_burst(self):
        b = TokenBucket(rate=100.0, burst=4.0)
        b.refill(0.0)
        b.refill(1e9)
        assert b.tokens == pytest.approx(4.0)

    def test_floor_reserves_capacity(self):
        b = TokenBucket(rate=1.0, burst=4.0)
        assert b.try_take(0.0, floor=3.0)    # 4 -> 3
        assert not b.try_take(0.0, floor=3.0)  # would dip below floor
        assert b.try_take(0.0)               # unfloored caller still can


class TestAdmissionController:
    def test_inert_without_rate(self):
        ctl = AdmissionController(AdmissionConfig(rate_rps=None))
        for i in range(10_000):
            assert ctl.try_admit("batch", float(i) * 1e-9)
        assert ctl.rejected_total() == 0

    def test_batch_sheds_first(self):
        """The batch_reserve floor means batch traffic runs out of
        tokens while interactive traffic still admits."""
        cfg = AdmissionConfig(rate_rps=1.0, burst=8.0, batch_reserve=0.5)
        ctl = AdmissionController(cfg)
        batch_ok = interactive_ok = 0
        for _ in range(8):
            batch_ok += ctl.try_admit("batch", 0.0)
        for _ in range(8):
            interactive_ok += ctl.try_admit("interactive", 0.0)
        assert batch_ok == 4          # stops at the 50% reserve floor
        assert interactive_ok == 4    # takes the bucket to zero

    def test_admit_raises_typed_error(self):
        ctl = AdmissionController(AdmissionConfig(rate_rps=1.0, burst=1.0))
        ctl.admit("interactive", 0.0)
        with pytest.raises(AdmissionRejectedError) as exc_info:
            ctl.admit("interactive", 0.0)
        assert isinstance(exc_info.value, ResilienceError)

    def test_priority_validated(self):
        ctl = AdmissionController(AdmissionConfig(rate_rps=1.0))
        with pytest.raises(Exception):
            ctl.try_admit("bogus", 0.0)

    def test_counters(self):
        obs = Obs()
        ctl = AdmissionController(AdmissionConfig(rate_rps=1.0, burst=1.0),
                                  obs=obs)
        ctl.try_admit("interactive", 0.0)
        ctl.try_admit("interactive", 0.0)
        reg = obs.registry
        assert reg.counter("overload.admission.admitted_total",
                           {"priority": "interactive"}).value == 1
        assert reg.counter("overload.admission.rejected_total",
                           {"priority": "interactive"}).value == 1


class TestRetryBudget:
    def test_bounded_by_deposits(self):
        cfg = RetryBudgetConfig(ratio=0.2, initial=2.0, cap=100.0)
        budget = RetryBudget(cfg)
        n_requests = 50
        for _ in range(n_requests):
            budget.on_request()
        granted = sum(budget.try_spend() for _ in range(1000))
        assert granted <= cfg.initial + cfg.ratio * n_requests
        assert budget.denied_total > 0

    def test_cap_limits_hoarding(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=1.0, initial=0.0,
                                               cap=5.0))
        for _ in range(1000):
            budget.on_request()
        assert budget.tokens == pytest.approx(5.0)

    def test_thread_safety_invariant(self):
        cfg = RetryBudgetConfig(ratio=0.1, initial=0.0, cap=1e9)
        budget = RetryBudget(cfg)
        grants = []

        def work():
            local = 0
            for _ in range(500):
                budget.on_request()
                if budget.try_spend():
                    local += 1
            grants.append(local)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(grants) <= cfg.ratio * 8 * 500 + 1e-9


class TestLatencyTracker:
    def test_ewma_converges(self):
        tr = LatencyTracker(alpha=0.5)
        tr.observe("r0", 1.0)
        tr.observe("r0", 2.0)
        assert tr.ewma("r0") == pytest.approx(1.5)
        assert tr.ewma("unknown") == 0.0

    def test_straggler_needs_two_peers(self):
        tr = LatencyTracker()
        tr.observe("r0", 10.0)
        assert not tr.is_straggler("r0", factor=2.0)
        tr.observe("r1", 1.0)
        assert not tr.is_straggler("r0", factor=2.0)  # one peer: no pop.
        tr.observe("r2", 1.0)
        assert tr.is_straggler("r0", factor=2.0)
        assert not tr.is_straggler("r1", factor=2.0)

    def test_forget_and_snapshot(self):
        tr = LatencyTracker()
        tr.observe("r0", 1.0)
        assert tr.snapshot() == {"r0": 1.0}
        tr.forget("r0")
        assert tr.ewma("r0") == 0.0


class TestHedgePair:
    def test_first_resolve_wins_once(self):
        pair = HedgePair()
        assert pair.resolve("hedge")
        assert not pair.resolve("primary")
        assert pair.resolved
        assert pair.cancelled("primary")
        assert not pair.cancelled("hedge")

    def test_mark_failed_fires_once_when_both_dead(self):
        pair = HedgePair()
        assert not pair.mark_failed("primary")   # hedge still alive
        assert pair.mark_failed("hedge")         # both dead: count once
        assert not pair.mark_failed("hedge")     # never twice

    def test_mark_failed_never_after_win(self):
        pair = HedgePair()
        assert pair.resolve("primary")
        assert not pair.mark_failed("primary")
        assert not pair.mark_failed("hedge")

    def test_concurrent_resolution_single_winner(self):
        pair = HedgePair()
        wins = []
        barrier = threading.Barrier(2)

        def race(side):
            barrier.wait()
            if pair.resolve(side):
                wins.append(side)

        threads = [threading.Thread(target=race, args=(s,))
                   for s in ("primary", "hedge")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestOverloadConfig:
    def test_disabled_by_default(self):
        cfg = OverloadConfig()
        assert not cfg.enabled
        assert OverloadConfig(hedge=HedgeConfig()).enabled

    def test_batch_fraction_validated(self):
        with pytest.raises(Exception):
            OverloadConfig(batch_fraction=1.5)

    def test_priorities_constant(self):
        assert PRIORITIES == ("interactive", "batch")


class TestOverloadContext:
    def test_builds_only_configured_pieces(self):
        ctx = OverloadContext(OverloadConfig(hedge=HedgeConfig()))
        assert ctx.admission is None
        assert ctx.retry_budget is None
        assert ctx.latency is not None

    def test_counters_shared_on_one_obs(self):
        obs = Obs()
        ctx = OverloadContext(
            OverloadConfig(admission=AdmissionConfig(rate_rps=1.0),
                           retry_budget=RetryBudgetConfig()),
            obs=obs)
        ctx.hedges_issued.inc()
        assert obs.registry.counter(
            "overload.hedge.issued_total").value == 1
