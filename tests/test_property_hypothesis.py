"""Property-based tests (hypothesis) on the core data structures.

Invariants under test:

* DASP SpMV == reference CSR SpMV for arbitrary sparsity structures;
* lane-accurate and vectorized engines agree;
* every format conversion round-trips;
* classification partitions rows exactly;
* packing conserves every nonzero exactly once.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DASPMatrix, classify_rows, dasp_spmv
from repro.formats import BSRMatrix, COOMatrix, CSRMatrix, ELLMatrix
from repro.gpu.mma import FP64_M8N8K4
from repro.baselines import paper_methods

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def sparse_matrices(draw, max_rows=40, max_cols=600, max_row_len=None):
    """Strategy producing CSR matrices with arbitrary row-length mixes,
    including empty rows, length-1..4 rows, medium and long rows."""
    m = draw(st.integers(0, max_rows))
    n = draw(st.integers(1, max_cols))
    cap = n if max_row_len is None else min(n, max_row_len)
    lens = draw(st.lists(st.integers(0, cap), min_size=m, max_size=m))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i, l in enumerate(lens):
        if l:
            c = rng.choice(n, size=l, replace=False)
            rows.extend([i] * l)
            cols.extend(c.tolist())
            vals.extend(rng.uniform(-1, 1, l).tolist())
    return COOMatrix((m, n), np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64),
                     np.array(vals)).to_csr(sum_duplicates=False)


@given(sparse_matrices(), st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_dasp_matches_reference(csr, xseed):
    x = np.random.default_rng(xseed).standard_normal(csr.shape[1])
    assert np.allclose(dasp_spmv(csr, x), csr.matvec(x), rtol=1e-10, atol=1e-12)


@given(sparse_matrices(max_rows=24, max_cols=400), st.integers(0, 2**31 - 1))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_warp_engine_matches_vectorized(csr, xseed):
    x = np.random.default_rng(xseed).standard_normal(csr.shape[1])
    dasp = DASPMatrix.from_csr(csr)
    assert np.allclose(dasp_spmv(dasp, x, engine="warp"),
                       dasp_spmv(dasp, x), rtol=1e-12, atol=1e-13)


@given(sparse_matrices())
@settings(**SETTINGS)
def test_classification_partitions_rows(csr):
    cls = classify_rows(csr)
    all_rows = np.concatenate(
        [cls.long, cls.medium, cls.empty] + [cls.short[k] for k in (1, 2, 3, 4)])
    assert np.array_equal(np.sort(all_rows), np.arange(csr.shape[0]))


@given(sparse_matrices())
@settings(**SETTINGS)
def test_dasp_conserves_nonzeros(csr):
    """Sum of all stored values equals sum of the original values — every
    nonzero is packed exactly once and padding contributes zero."""
    dasp = DASPMatrix.from_csr(csr)
    stored = (dasp.long_plan.val.sum() + dasp.medium_plan.reg_val.sum()
              + dasp.medium_plan.irreg_val.sum()
              + dasp.short_plan.val13.sum() + dasp.short_plan.val22.sum()
              + dasp.short_plan.val4.sum() + dasp.short_plan.val1.sum())
    assert np.isclose(stored, csr.data.sum(), rtol=1e-9, atol=1e-9)


@given(sparse_matrices())
@settings(**SETTINGS)
def test_coo_csr_roundtrip(csr):
    assert np.array_equal(csr.to_coo().to_csr(sum_duplicates=False).to_dense(),
                          csr.to_dense())


@given(sparse_matrices(max_rows=24, max_cols=64),
       st.sampled_from([(2, 2), (4, 4), (8, 8), (3, 5)]))
@settings(**SETTINGS)
def test_bsr_roundtrip(csr, blocksize):
    bsr = BSRMatrix.from_csr(csr, blocksize)
    assert np.allclose(bsr.to_csr().to_dense(), csr.to_dense())
    assert bsr.fill_ratio(csr.nnz) >= 1.0 or csr.nnz == 0


@given(sparse_matrices(max_rows=24, max_cols=64))
@settings(**SETTINGS)
def test_ell_roundtrip(csr):
    ell = ELLMatrix.from_csr(csr)
    assert np.allclose(ell.to_csr().to_dense(), csr.to_dense())


@given(sparse_matrices(max_rows=20, max_cols=200), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_methods_agree(csr, xseed):
    """Every paper method computes the same y on arbitrary structures."""
    x = np.random.default_rng(xseed).standard_normal(csr.shape[1])
    ref = csr.matvec(x)
    for method in paper_methods():
        y = method.run(method.prepare(csr), x)
        assert np.allclose(y, ref, rtol=1e-9, atol=1e-11), method.name


@given(sparse_matrices(max_rows=40, max_cols=300))
@settings(**SETTINGS)
def test_padding_ratio_at_least_one(csr):
    dasp = DASPMatrix.from_csr(csr)
    assert dasp.padding_ratio >= 1.0
    assert dasp.nnz == csr.nnz


@given(st.lists(st.integers(0, 400), min_size=0, max_size=60))
@settings(**SETTINGS)
def test_medium_regular_prefix_invariant(lengths):
    """In every row-block, the regular chunk count K_b satisfies the
    threshold rule: chunk K_b-1 qualifies, chunk K_b does not."""
    from repro.core.medium_rows import build_medium_rows

    lengths = [l for l in lengths if 4 < l <= 256]
    rng = np.random.default_rng(0)
    m = len(lengths)
    rows, cols, vals = [], [], []
    n = 500
    for i, l in enumerate(lengths):
        c = rng.choice(n, size=l, replace=False)
        rows += [i] * l
        cols += c.tolist()
        vals += [1.0] * l
    csr = COOMatrix((m, n), np.array(rows, np.int64), np.array(cols, np.int64),
                    np.array(vals)).to_csr(sum_duplicates=False)
    cls = classify_rows(csr)
    plan = build_medium_rows(csr, cls.medium, FP64_M8N8K4)
    lens_sorted = csr.row_lengths()[plan.row_idx]
    nb = plan.n_rowblocks
    K_b = np.diff(plan.rowblock_ptr) // 32
    L = np.zeros((nb, 8), dtype=np.int64)
    if m:
        L.reshape(-1)[:m] = lens_sorted
    for b in range(nb):
        k = int(K_b[b])
        occ = lambda kk: np.clip(L[b] - 4 * kk, 0, 4).sum()
        if k > 0:
            assert occ(k - 1) > 24
        assert occ(k) <= 24
