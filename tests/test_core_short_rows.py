"""Tests for the short-rows planner and kernels (Algorithms 4-5)."""

import numpy as np
import pytest

from repro.core import classify_rows
from repro.core.short_rows import build_short_rows, run_short_rows, short_rows_events
from repro.gpu import A100
from repro.gpu.mma import FP64_M8N8K4, MmaUnit
from tests.conftest import random_csr


@pytest.fixture
def short_matrix(rng):
    return random_csr(120, 400, rng,
                      row_len_sampler=lambda r, m: r.integers(1, 5, m))


def plan_for(csr):
    cls = classify_rows(csr)
    return build_short_rows(csr, cls.short, FP64_M8N8K4), cls


def lengths_matrix(rng, lengths, n=200):
    lengths = np.asarray(lengths)
    return random_csr(lengths.size, n, rng,
                      row_len_sampler=lambda r, m: lengths)


class TestPiecing:
    def test_13_pairing_count(self, rng):
        csr = lengths_matrix(rng, [1] * 5 + [3] * 8)
        plan, _ = plan_for(csr)
        assert plan.rows13_one.size == 5
        assert plan.rows13_three.size == 5

    def test_leftover_threes_become_len4(self, rng):
        csr = lengths_matrix(rng, [1] * 2 + [3] * 6)
        plan, _ = plan_for(csr)
        # 4 leftover length-3 rows are padded into the len-4 category
        assert plan.rows4.size == 4

    def test_leftover_ones_become_singles(self, rng):
        csr = lengths_matrix(rng, [1] * 7 + [3] * 2)
        plan, _ = plan_for(csr)
        assert plan.rows1.size == 5

    def test_22_pairing(self, rng):
        csr = lengths_matrix(rng, [2] * 7)
        plan, _ = plan_for(csr)
        assert plan.rows22_a.size == 3 and plan.rows22_b.size == 3
        # the odd leftover length-2 row is padded into len-4
        assert plan.rows4.size == 1

    def test_every_short_row_covered_once(self, short_matrix):
        plan, cls = plan_for(short_matrix)
        covered = np.concatenate([
            plan.rows13_one, plan.rows13_three, plan.rows22_a, plan.rows22_b,
            plan.rows4, plan.rows1])
        expected = np.concatenate([cls.short[k] for k in (1, 2, 3, 4)])
        assert np.array_equal(np.sort(covered), np.sort(expected))

    def test_packed_row_layout_13(self, rng):
        csr = lengths_matrix(rng, [1, 3])
        plan, _ = plan_for(csr)
        v13 = plan.val13.reshape(-1, 4)
        # slot 0 = the length-1 row's value; slots 1-3 = the length-3 row's
        assert v13[0, 0] == csr.data[csr.indptr[0]]
        assert np.array_equal(v13[0, 1:4], csr.data[csr.indptr[1]:csr.indptr[1] + 3])

    def test_block_padding_multiple_of_8_rows(self, short_matrix):
        plan, _ = plan_for(short_matrix)
        for arr in (plan.val13, plan.val22, plan.val4):
            assert arr.size % 32 == 0


class TestKernel:
    def test_matches_reference(self, short_matrix, rng):
        plan, _ = plan_for(short_matrix)
        x = rng.standard_normal(400)
        rows, vals = run_short_rows(plan, x)
        ref = short_matrix.matvec(x)
        assert np.allclose(vals, ref[rows], rtol=1e-12)

    @pytest.mark.parametrize("lengths", [
        [1] * 10, [2] * 10, [3] * 10, [4] * 10,
        [1, 2, 3, 4] * 5, [1] * 3 + [3] * 9 + [2] * 5,
        [1], [2], [3], [4], [1, 3], [2, 2],
    ])
    def test_all_composition_cases(self, rng, lengths):
        csr = lengths_matrix(rng, lengths)
        plan, _ = plan_for(csr)
        x = rng.standard_normal(200)
        rows, vals = run_short_rows(plan, x)
        ref = csr.matvec(x)
        assert np.allclose(vals, ref[rows], rtol=1e-12)
        assert rows.size == len(lengths)

    def test_mma_count_two_per_pieced_block(self, rng):
        csr = lengths_matrix(rng, [1] * 8 + [3] * 8)  # one 1&3 block
        plan, _ = plan_for(csr)
        unit = MmaUnit(FP64_M8N8K4)
        run_short_rows(plan, np.zeros(200), unit=unit)
        assert unit.issue_count == 2  # two x-load passes over one block

    def test_mma_count_one_per_len4_block(self, rng):
        csr = lengths_matrix(rng, [4] * 16)  # two len-4 blocks
        plan, _ = plan_for(csr)
        unit = MmaUnit(FP64_M8N8K4)
        run_short_rows(plan, np.zeros(200), unit=unit)
        assert unit.issue_count == 2

    def test_empty_plan(self, rng):
        csr = random_csr(5, 10, rng,
                         row_len_sampler=lambda r, m: np.zeros(m, np.int64))
        plan, _ = plan_for(csr)
        rows, vals = run_short_rows(plan, np.zeros(10))
        assert rows.size == 0

    def test_padding_ratio(self, rng):
        csr = lengths_matrix(rng, [4] * 8)
        plan, _ = plan_for(csr)
        assert plan.padding_ratio == pytest.approx(1.0)
        csr2 = lengths_matrix(rng, [3] * 8)  # each padded by 1 zero
        plan2, _ = plan_for(csr2)
        assert plan2.padding_ratio == pytest.approx(4 / 3)


class TestEvents:
    def test_single_stream_launch(self, short_matrix):
        plan, _ = plan_for(short_matrix)
        assert short_rows_events(plan, A100, x_bytes=0).kernel_launches == 1

    def test_mma_accounting(self, rng):
        csr = lengths_matrix(rng, [1] * 8 + [3] * 8 + [2] * 16 + [4] * 8)
        plan, _ = plan_for(csr)
        ev = short_rows_events(plan, A100, x_bytes=0)
        expected = 2 * plan.blocks13 + 2 * plan.blocks22 + plan.blocks4
        assert ev.mma_count == expected

    def test_singles_on_cuda_cores(self, rng):
        csr = lengths_matrix(rng, [1] * 5)
        plan, _ = plan_for(csr)
        ev = short_rows_events(plan, A100, x_bytes=0)
        assert ev.flops_cuda == 2.0 * 5

    def test_empty_no_launch(self, rng):
        csr = random_csr(4, 10, rng,
                         row_len_sampler=lambda r, m: np.zeros(m, np.int64))
        plan, _ = plan_for(csr)
        assert short_rows_events(plan, A100, x_bytes=0).kernel_launches == 0
