"""Router tests over real SpMVServer replicas (repro.cluster.router)."""

import numpy as np
import pytest

from repro.cluster import (
    HealthConfig,
    NoHealthyReplicaError,
    Router,
)
from repro.obs import Obs
from repro.store import PlanStore
from tests.conftest import random_csr


def make_matrices(n=3, seed=0):
    rng = np.random.default_rng(seed)
    return [random_csr(48 + 16 * i, 48 + 16 * i, rng) for i in range(n)]


def make_router(n_servers=3, *, obs=None, health=None, **server_kw):
    from repro.serve import SpMVServer

    kw = dict(workers=1, queue_depth=16)
    kw.update(server_kw)
    servers = [SpMVServer(**kw) for _ in range(n_servers)]
    return Router(servers, seed=1, obs=obs, health=health)


class TestRouting:
    def test_register_returns_fingerprint_on_all(self):
        with make_router() as router:
            csr = make_matrices(1)[0]
            fp = router.register(csr)
            for server in router.servers.values():
                assert csr is not None
                assert server.submit(fp, np.zeros(csr.shape[1])) is not None

    def test_affinity_routes_to_ring_home(self):
        obs = Obs()
        rng = np.random.default_rng(0)
        with make_router(obs=obs) as router:
            fps = [router.register(c) for c in make_matrices(4)]
            shapes = {fp: c.shape[1]
                      for fp, c in zip(fps, make_matrices(4))}
            futs = [router.submit(fp, rng.uniform(-1, 1, shapes[fp]))
                    for fp in fps for _ in range(5)]
            for f in futs:
                assert f.result(timeout=30) is not None
            # with everything healthy, every request went to its home
            assert obs.registry.counter(
                "cluster.router.failover_total").value == 0
            for fp in fps:
                home = router.home(fp)
                assert obs.registry.counter(
                    "cluster.router.replica_routed_total",
                    {"replica": home}).value > 0

    def test_select_moves_sick_replicas_back(self):
        health = HealthConfig(down_after=1, max_queue_depth=1)
        with make_router(health=health) as router:
            fp = router.register(make_matrices(1)[0])
            home = router.home(fp)
            from repro.cluster import ReplicaSignals

            router.health.observe(home, ReplicaSignals(queue_depth=99))
            order = router.select(fp)
            assert order[-1] == home
            assert not router.health.is_healthy(home)

    def test_failover_when_home_marked_down(self):
        obs = Obs()
        health = HealthConfig(down_after=1)
        rng = np.random.default_rng(1)
        with make_router(obs=obs, health=health) as router:
            csr = make_matrices(1)[0]
            fp = router.register(csr)
            from repro.cluster import ReplicaSignals

            router.health.observe(router.home(fp),
                                  ReplicaSignals(queue_depth=10**6))
            fut = router.submit(fp, rng.uniform(-1, 1, csr.shape[1]))
            assert fut.result(timeout=30) is not None
            assert obs.registry.counter(
                "cluster.router.failover_total").value == 1

    def test_all_queues_full_raises(self):
        """Every replica refusing with backpressure surfaces as
        NoHealthyReplicaError, not a silent drop."""
        import threading

        from repro.serve import SpMVServer

        gate = threading.Event()
        # max_batch=1: every submit flushes a one-request batch, so the
        # depth-1 queues fill after one accepted request each
        servers = [SpMVServer(workers=1, queue_depth=1, max_batch=1)
                   for _ in range(2)]
        router = Router(servers, seed=1)
        try:
            csr = make_matrices(1)[0]
            fp = router.register(csr)
            x = np.zeros(csr.shape[1])
            # saturate both replicas' bounded queues
            blocked = []
            for server in servers:
                server.scheduler.submit_task(gate.wait)
            with pytest.raises(NoHealthyReplicaError):
                for _ in range(64):
                    blocked.append(router.submit(fp, x))
        finally:
            gate.set()
            router.close()

    def test_probe_reports_health_map(self):
        with make_router(2) as router:
            router.register(make_matrices(1)[0])
            out = router.probe()
            assert out == {"r0": True, "r1": True}


class TestWarm:
    def test_concurrent_ring_scoped_warm(self, tmp_path):
        """All replicas warm their assigned fingerprints from one shared
        store directory, concurrently."""
        from repro.core import DASPMatrix
        from repro.serve import SpMVServer
        from repro.store import fingerprint_csr

        matrices = make_matrices(4, seed=7)
        store_dir = tmp_path / "plans"
        seed_store = PlanStore(store_dir)
        fps = []
        for csr in matrices:
            fp = fingerprint_csr(csr.astype(np.float64))
            seed_store.put(fp, DASPMatrix.from_csr(csr.astype(np.float64)))
            fps.append(fp)

        servers = [SpMVServer(workers=1, store=store_dir) for _ in range(3)]
        with Router(servers, seed=1) as router:
            for csr in matrices:
                router.register(csr.astype(np.float64))
            warmed = router.warm(fps)
        assigned = router.assignments(fps)
        assert sum(warmed.values()) == len(fps)
        for rid, n in warmed.items():
            assert n == len(assigned[rid])


class TestClosed:
    def test_submit_and_warm_after_close_raise_typed(self):
        from repro import ReproError
        from repro.cluster import RouterClosedError

        router = make_router(2)
        csr = make_matrices(1)[0]
        fp = router.register(csr)
        router.close()
        with pytest.raises(RouterClosedError):
            router.submit(fp, np.zeros(csr.shape[1]))
        with pytest.raises(RouterClosedError):
            router.warm([fp])
        assert issubclass(RouterClosedError, ReproError)

    def test_close_is_idempotent(self):
        router = make_router(1)
        router.close()
        router.close()

    def test_close_submit_race_never_leaks_futures(self):
        """Submitters racing a concurrent close() either get a future
        that settles or a typed error — never a future nobody resolves
        and never an untyped crash."""
        import threading

        from repro.cluster import RouterClosedError
        from repro.resilience import ServerClosedError

        router = make_router(2, queue_depth=64)
        csr = make_matrices(1)[0]
        fp = router.register(csr)
        x = np.zeros(csr.shape[1])
        futures, unexpected = [], []
        start = threading.Barrier(5)

        def submitter():
            start.wait()
            for _ in range(50):
                try:
                    futures.append(router.submit(fp, x))
                except (RouterClosedError, NoHealthyReplicaError):
                    pass
                except Exception as exc:  # pragma: no cover - regression
                    unexpected.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        start.wait()
        router.close()
        for t in threads:
            t.join()
        assert not unexpected
        for fut in futures:
            try:
                assert fut.result(timeout=30) is not None
            except ServerClosedError:
                pass  # accepted then failed-out by close: still settled


class TestAllUnhealthy:
    def test_sick_replicas_still_serve_as_last_resort(self):
        """Health-down everywhere must not black-hole traffic: the
        preference walk keeps sick replicas at the end."""
        health = HealthConfig(down_after=1, up_after=1)
        rng = np.random.default_rng(3)
        with make_router(2, health=health) as router:
            from repro.cluster import ReplicaSignals

            csr = make_matrices(1)[0]
            fp = router.register(csr)
            for rid in router.servers:
                router.health.observe(rid,
                                      ReplicaSignals(queue_depth=10**6))
            assert not any(router.health.is_healthy(r)
                           for r in router.servers)
            fut = router.submit(fp, rng.uniform(-1, 1, csr.shape[1]))
            assert fut.result(timeout=30) is not None

    def test_all_refusing_raises_then_recovers_without_lost_futures(self):
        """Every replica refusing -> NoHealthyReplicaError; once they
        drain, the accepted backlog completes (zero lost futures) and
        new submits route normally again."""
        import threading

        from repro.serve import SpMVServer

        gate = threading.Event()
        servers = [SpMVServer(workers=1, queue_depth=1, max_batch=1)
                   for _ in range(2)]
        router = Router(servers, seed=1)
        try:
            csr = make_matrices(1)[0]
            fp = router.register(csr)
            x = np.zeros(csr.shape[1])
            for server in servers:
                server.scheduler.submit_task(gate.wait)
            accepted = []
            with pytest.raises(NoHealthyReplicaError):
                for _ in range(64):
                    accepted.append(router.submit(fp, x))
            gate.set()  # recovery: replicas drain their queues
            for fut in accepted:
                assert fut.result(timeout=30) is not None
            assert router.submit(fp, x).result(timeout=30) is not None
        finally:
            gate.set()
            router.close()
