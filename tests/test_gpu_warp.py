"""Tests for the lane-accurate warp emulator (shuffle semantics)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.gpu import FULL_MASK, WARP_SIZE, Warp


@pytest.fixture
def warp():
    return Warp()


@pytest.fixture
def lanes():
    return np.arange(WARP_SIZE, dtype=np.float64)


class TestShflSync:
    def test_broadcast_scalar_src(self, warp, lanes):
        out = warp.shfl_sync(FULL_MASK, lanes, 5)
        assert np.all(out == 5.0)

    def test_per_lane_src(self, warp, lanes):
        src = (np.arange(WARP_SIZE) + 1) % WARP_SIZE
        out = warp.shfl_sync(FULL_MASK, lanes, src)
        assert np.array_equal(out, src.astype(float))

    def test_src_wraps_modulo_width(self, warp, lanes):
        out = warp.shfl_sync(FULL_MASK, lanes, 33)
        assert np.all(out == 1.0)  # 33 % 32

    def test_negative_src_wraps(self, warp, lanes):
        """CUDA takes srcLane modulo width; -1 resolves to lane 31."""
        out = warp.shfl_sync(FULL_MASK, lanes, -1)
        assert np.all(out == 31.0)

    def test_subwarp_width(self, warp, lanes):
        out = warp.shfl_sync(FULL_MASK, lanes, 1, width=8)
        expected = (np.arange(WARP_SIZE) & ~7) + 1
        assert np.array_equal(out, expected.astype(float))

    def test_scalar_value_broadcasts(self, warp):
        out = warp.shfl_sync(FULL_MASK, 3.5, 0)
        assert np.all(out == 3.5)

    def test_rejects_partial_mask(self, warp, lanes):
        with pytest.raises(ValidationError):
            warp.shfl_sync(0xFFFF, lanes, 0)


class TestShflDownUp:
    def test_down_basic(self, warp, lanes):
        out = warp.shfl_down_sync(FULL_MASK, lanes, 4)
        assert out[0] == 4.0 and out[27] == 31.0

    def test_down_boundary_keeps_own(self, warp, lanes):
        out = warp.shfl_down_sync(FULL_MASK, lanes, 4)
        assert np.array_equal(out[28:], lanes[28:])

    def test_down_subwarp(self, warp, lanes):
        out = warp.shfl_down_sync(FULL_MASK, lanes, 2, width=4)
        # lane 2's source (4) crosses the width-4 boundary -> keeps own
        assert out[0] == 2.0 and out[2] == 2.0

    def test_up_basic(self, warp, lanes):
        out = warp.shfl_up_sync(FULL_MASK, lanes, 3)
        assert out[5] == 2.0

    def test_up_boundary_keeps_own(self, warp, lanes):
        out = warp.shfl_up_sync(FULL_MASK, lanes, 3)
        assert np.array_equal(out[:3], lanes[:3])

    def test_paper_reduction_offsets(self, warp):
        """The 9/18 shfl_down pattern of Algorithm 2 sums lanes 0/9/18/27."""
        v = np.zeros(WARP_SIZE)
        v[[0, 9, 18, 27]] = [1.0, 2.0, 4.0, 8.0]
        v = v + warp.shfl_down_sync(FULL_MASK, v, 9)
        v = v + warp.shfl_down_sync(FULL_MASK, v, 18)
        assert v[0] == 15.0


class TestShflXor:
    def test_butterfly_pairs(self, warp, lanes):
        out = warp.shfl_xor_sync(FULL_MASK, lanes, 1)
        assert out[0] == 1.0 and out[1] == 0.0

    def test_reduce_sum_all_lanes(self, warp, lanes):
        out = warp.reduce_sum(lanes)
        assert np.all(out == lanes.sum())

    def test_reduce_sum_counts_shuffles(self):
        w = Warp()
        w.reduce_sum(np.ones(WARP_SIZE))
        assert w.shfl_count == 5  # log2(32) butterfly steps


class TestBallot:
    def test_all_true(self, warp):
        assert warp.ballot_sync(FULL_MASK, np.ones(WARP_SIZE, bool)) == FULL_MASK

    def test_none(self, warp):
        assert warp.ballot_sync(FULL_MASK, np.zeros(WARP_SIZE, bool)) == 0

    def test_single_lane(self, warp):
        pred = np.zeros(WARP_SIZE, bool)
        pred[7] = True
        assert warp.ballot_sync(FULL_MASK, pred) == 1 << 7


class TestRegisters:
    def test_zeros_shape(self, warp):
        assert warp.zeros().shape == (WARP_SIZE,)

    def test_rejects_bad_register_shape(self, warp):
        with pytest.raises(ValidationError):
            warp.shfl_sync(FULL_MASK, np.zeros(5), 0)

    def test_shfl_count_increments(self, warp, lanes):
        before = warp.shfl_count
        warp.shfl_sync(FULL_MASK, lanes, 0)
        warp.shfl_down_sync(FULL_MASK, lanes, 1)
        assert warp.shfl_count == before + 2
