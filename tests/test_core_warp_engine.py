"""Lane-accurate warp engine vs vectorized engine equivalence.

These are the load-bearing validation tests: the warp engine executes the
paper's Algorithms 2-5 literally (fragments, mma, shuffles), and the
vectorized engine must agree bit-for-bit up to float addition order.
"""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix, dasp_spmv
from tests.conftest import ROW_PROFILES, random_csr


@pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
def test_engines_agree(profile, rng):
    csr = random_csr(64, 900, rng, row_len_sampler=ROW_PROFILES[profile])
    dasp = DASPMatrix.from_csr(csr)
    x = rng.standard_normal(900)
    y_vec = dasp_spmv(dasp, x)
    y_warp = dasp_spmv(dasp, x, engine="warp")
    assert np.allclose(y_warp, y_vec, rtol=1e-13, atol=1e-14), profile


def test_engines_agree_with_reference(rng):
    csr = random_csr(48, 600, rng, row_len_sampler=ROW_PROFILES["mixed"])
    x = rng.standard_normal(600)
    y_warp = dasp_spmv(DASPMatrix.from_csr(csr), x, engine="warp")
    assert np.allclose(y_warp, csr.matvec(x), rtol=1e-11)


def test_warp_engine_long_rows_exact_groups(rng):
    """Rows sized exactly at group boundaries (256, 320) exercise the
    zero-padding-free path in Algorithm 2."""
    csr = random_csr(8, 1200, rng,
                     row_len_sampler=lambda r, m: np.array([320, 257, 448, 264,
                                                            512, 300, 290, 384]))
    x = rng.standard_normal(1200)
    y = dasp_spmv(DASPMatrix.from_csr(csr), x, engine="warp")
    assert np.allclose(y, csr.matvec(x), rtol=1e-11)


def test_warp_engine_medium_loop_num_path(rng):
    """Partial last row-block and multiple rowblocks per warp execute the
    Algorithm 3 target-shuffle extraction at i > 0."""
    csr = random_csr(35, 400, rng,
                     row_len_sampler=lambda r, m: r.integers(6, 120, m))
    x = rng.standard_normal(400)
    y = dasp_spmv(DASPMatrix.from_csr(csr), x, engine="warp")
    assert np.allclose(y, csr.matvec(x), rtol=1e-11)


def test_warp_engine_short_all_subcategories(rng):
    lengths = np.array([1] * 11 + [2] * 9 + [3] * 5 + [4] * 13)
    rng.shuffle(lengths)
    csr = random_csr(lengths.size, 200, rng,
                     row_len_sampler=lambda r, m: lengths)
    x = rng.standard_normal(200)
    y = dasp_spmv(DASPMatrix.from_csr(csr), x, engine="warp")
    assert np.allclose(y, csr.matvec(x), rtol=1e-12)


def test_warp_engine_fp16_matches_vectorized(rng):
    """The lane-accurate engine also runs the FP16 (fp32-accumulate)
    contract on the same 8x4 fragment layout."""
    csr = random_csr(40, 200, rng, dtype=np.float16)
    dasp = DASPMatrix.from_csr(csr)
    x = rng.uniform(-1, 1, 200).astype(np.float16)
    y_warp = dasp_spmv(dasp, x, engine="warp")
    y_vec = dasp_spmv(dasp, x)
    assert y_warp.dtype == np.float32
    assert np.allclose(y_warp, y_vec, rtol=1e-6)


def test_warp_engine_empty_matrix():
    from repro.formats import CSRMatrix

    dasp = DASPMatrix.from_csr(CSRMatrix.empty((6, 6)))
    y = dasp_spmv(dasp, np.ones(6), engine="warp")
    assert np.array_equal(y, np.zeros(6))
