"""Tests for repro.pipeline — async pipelined execution + speculative
plan warming — and the warm-path bugfixes that shipped with it."""

import threading
import time

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import (
    DASPMatrix,
    choose_spmm_strategy,
    dasp_spmm_tiled,
    overlap_schedule,
    reorder_from_perm,
    reorder_rows,
    spmm_tiled_overlap_cost,
)
from repro.gpu.device import get_device
from repro.obs import Obs
from repro.pipeline import (
    PipelineConfig,
    PlanPrefetcher,
    PrefetchLane,
    SpeculativeWarmer,
    WarmerConfig,
    warm_action,
    zipf_fit,
)
from repro.serve import (
    PlanRegistry,
    PlanStore,
    SpMMRequest,
    WorkloadConfig,
    matrix_fingerprint,
    plan_nbytes,
    run_workload,
)
from repro.shard import dasp_spmv_sharded, lpt_assign, lpt_makespan, sharded_batch_cost
from tests.conftest import random_csr


# ----------------------------------------------------------------------
# the modeled prefetch lane
# ----------------------------------------------------------------------
class TestPrefetchLane:
    def test_single_lane_serializes(self):
        lane = PrefetchLane(obs=Obs())
        r1 = lane.schedule(0.0, 2.0)
        r2 = lane.schedule(1.0, 3.0)   # queues behind the first load
        assert r1 == 2.0 and r2 == 5.0
        assert lane.busy_until == 5.0

    def test_two_lanes_overlap(self):
        lane = PrefetchLane(obs=Obs(), lanes=2)
        assert lane.schedule(0.0, 2.0) == 2.0
        assert lane.schedule(1.0, 3.0) == 4.0   # second engine, starts at 1

    def test_counters(self):
        obs = Obs()
        lane = PrefetchLane(obs=obs)
        lane.schedule(0.0, 1.5, kind="load")
        lane.schedule(0.0, 0.5, kind="build")
        assert obs.counter("pipeline.prefetch_total").value == 2
        assert obs.counter("pipeline.prefetch_seconds_total").value == 2.0
        assert obs.counter("pipeline.prefetch_kind_total",
                           {"kind": "load"}).value == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            PrefetchLane(obs=Obs(), lanes=0)
        with pytest.raises(ValidationError):
            PipelineConfig(lanes=0)


# ----------------------------------------------------------------------
# Zipf fitting + the speculative warmer
# ----------------------------------------------------------------------
class TestZipfFit:
    def test_recovers_exponent(self):
        s = 1.4
        counts = (1000 * np.arange(1, 30, dtype=float) ** -s).astype(int)
        assert zipf_fit(counts) == pytest.approx(s, abs=0.1)

    def test_default_when_uninformative(self):
        assert zipf_fit([]) == 1.1
        assert zipf_fit([17]) == 1.1
        assert zipf_fit([5, 0, 0], default=2.0) == 2.0

    def test_clamped(self):
        assert zipf_fit([10 ** 9, 1]) <= 10.0
        assert zipf_fit([3, 5, 9]) == 0.0   # rising counts -> flat floor


class TestSpeculativeWarmer:
    def test_silent_until_min_observed(self):
        w = SpeculativeWarmer(WarmerConfig(min_observed=5), obs=Obs())
        for fp in ("a", "b"):
            w.register(fp)
        for _ in range(4):
            w.observe("a")
        assert w.due(resident=lambda f: False) == []
        w.observe("a")
        assert "b" in w.due(resident=lambda f: False)

    def test_popular_first_and_unobserved_tail(self):
        w = SpeculativeWarmer(WarmerConfig(min_observed=1, max_per_tick=3),
                              obs=Obs())
        for fp in ("cold1", "hot", "cold2"):
            w.register(fp)
        for _ in range(6):
            w.observe("hot")
        est = w.estimate()
        assert est[0][0] == "hot"
        # unobserved matrices keep registration order in the tail
        assert [fp for fp, _ in est[1:]] == ["cold1", "cold2"]
        assert sum(share for _, share in est) == pytest.approx(1.0)

    def test_nominates_once_and_reset(self):
        w = SpeculativeWarmer(WarmerConfig(min_observed=1), obs=Obs())
        w.register("a")
        w.register("b")
        w.observe("a")
        first = w.due(resident=lambda f: False)
        assert set(first) == {"a", "b"}
        assert w.due(resident=lambda f: False) == []
        w.reset("b")
        assert w.due(resident=lambda f: False) == ["b"]

    def test_skips_resident(self):
        w = SpeculativeWarmer(WarmerConfig(min_observed=1), obs=Obs())
        for fp in ("a", "b"):
            w.register(fp)
        w.observe("a")
        assert w.due(resident=lambda f: f == "a") == ["b"]

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            WarmerConfig(min_share=1.5)
        with pytest.raises(ValidationError):
            WarmerConfig(max_per_tick=0)


class TestWarmAction:
    def test_no_store_builds(self):
        assert warm_action(None, "deadbeef", get_device("A100")) == "build"

    def test_absent_artifact_builds(self, tmp_path):
        store = PlanStore(tmp_path / "s")
        assert warm_action(store, "0" * 16, get_device("A100")) == "build"

    def test_stored_artifact_gated(self, tmp_path, rng):
        csr = random_csr(64, 64, rng)
        fp = matrix_fingerprint(csr)
        store = PlanStore(tmp_path / "s")
        store.put(fp, DASPMatrix.from_csr(csr))
        # the gate decides; either answer is legal, but it must decide
        assert warm_action(store, fp, get_device("A100")) in ("load", "build")


# ----------------------------------------------------------------------
# double-buffered kernel pricing (numerics must never change)
# ----------------------------------------------------------------------
class TestOverlapSchedule:
    def test_hand_example(self):
        # load0 + max(c0, load1) + max(c1, load2) + c2
        assert overlap_schedule([1.0, 2.0, 1.0],
                                [3.0, 1.0, 2.0]) \
            == 1.0 + max(3.0, 2.0) + max(1.0, 1.0) + 2.0

    def test_never_beats_compute_or_single_load(self):
        loads, computes = [0.5, 0.4, 0.3], [1.0, 0.2, 0.7]
        t = overlap_schedule(loads, computes)
        assert t >= sum(computes)
        assert t <= sum(loads) + sum(computes)

    def test_tiled_overlap_bounds(self, rng):
        plan = DASPMatrix.from_csr(random_csr(96, 200, rng))
        serial, overlapped = spmm_tiled_overlap_cost(
            plan, get_device("A100"), 64)
        assert 0.0 < overlapped <= serial

    def test_double_buffer_bitwise_and_counted(self, rng):
        plan = DASPMatrix.from_csr(random_csr(64, 120, rng))
        X = rng.uniform(-1, 1, (120, 48))
        obs = Obs()
        base = dasp_spmm_tiled(plan, X)
        db = dasp_spmm_tiled(plan, X, double_buffer=True, obs=obs)
        assert np.array_equal(base, db)
        assert obs.counter(
            "core.pipeline.double_buffered_tiles_total").value == 2

    def test_sharded_double_buffer_bitwise(self, rng):
        from repro.shard import build_sharded_plan

        csr = random_csr(120, 150, rng)
        sp = build_sharded_plan(csr, 3)
        x = rng.uniform(-1, 1, 150)
        obs = Obs()
        base = dasp_spmv_sharded(sp, x)
        db = dasp_spmv_sharded(sp, x, double_buffer=True, obs=obs)
        assert np.array_equal(base, db)
        assert obs.counter(
            "core.pipeline.double_buffered_bands_total").value == 3
        cost = sharded_batch_cost(sp, get_device("A100"), 8, workers=2)
        db_cost = sharded_batch_cost(sp, get_device("A100"), 8, workers=2,
                                     double_buffer=True)
        assert 0.0 < db_cost.makespan <= cost.makespan
        assert db_cost.serial == cost.serial

    def test_lpt_assign_matches_makespan(self):
        times = [3.0, 1.0, 2.0, 5.0, 0.5]
        lanes = lpt_assign(times, 2)
        assert sorted(i for lane in lanes for i in lane) == list(range(5))
        assert max(sum(times[i] for i in lane) for lane in lanes) \
            == lpt_makespan(times, 2)


class TestReorderFromPerm:
    def test_identity_is_natural(self, rng):
        csr = random_csr(48, 64, rng)
        ro = reorder_from_perm(csr, np.arange(48))
        assert ro.candidate == "natural"

    def test_matches_derived_reorder(self, rng):
        csr = random_csr(96, 128, rng,
                         row_len_sampler=lambda r, m: r.integers(0, 40, m))
        derived = reorder_rows(csr)
        loaded = reorder_from_perm(csr, derived.perm)
        assert np.array_equal(loaded.perm, derived.perm)
        assert np.array_equal(loaded.inv, derived.inv)
        plan = DASPMatrix.from_csr(csr)
        a = choose_spmm_strategy(plan, 64, get_device("A100"))
        b = choose_spmm_strategy(plan, 64, get_device("A100"),
                                 reorder_hint=loaded)
        assert a.name == b.name and a.modeled_s == b.modeled_s


# ----------------------------------------------------------------------
# satellite 1: warm() rides the registry single-flight
# ----------------------------------------------------------------------
class TestWarmSingleFlight:
    def test_concurrent_warm_and_get_load_once(self, tmp_path, rng):
        csr = random_csr(80, 100, rng)
        fp = matrix_fingerprint(csr)
        store = PlanStore(tmp_path / "s")
        store.put(fp, DASPMatrix.from_csr(csr))

        obs = Obs()
        reg = PlanRegistry(store=store, obs=obs)
        loads = []
        orig = store.load

        def slow_load(key, **kw):
            loads.append(key)
            time.sleep(0.05)
            return orig(key, **kw)

        store.load = slow_load
        start = threading.Barrier(6)
        results = []

        def do_warm():
            start.wait()
            results.append(("warm", reg.warm(fp)))

        def do_get():
            start.wait()
            plan, _, _ = reg.get_ex(csr, fingerprint=fp)
            results.append(("get", plan))

        threads = [threading.Thread(target=do_warm) for _ in range(3)] \
            + [threading.Thread(target=do_get) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # exactly one disk read, one counted load — no double-count
        assert len(loads) == 1
        assert obs.counter("serve.plan_cache.store_loads_total").value == 1
        assert obs.counter("store.hits_total").value == 1
        assert reg.peek(fp) is not None

    def test_warm_does_not_block_behind_inflight_build(self, rng):
        csr = random_csr(40, 60, rng)
        fp = matrix_fingerprint(csr)
        reg = PlanRegistry()
        release = threading.Event()
        building = threading.Event()

        def slow_builder(matrix):
            building.set()
            assert release.wait(5.0)
            return DASPMatrix.from_csr(matrix)

        t = threading.Thread(
            target=lambda: reg.get_ex(csr, fingerprint=fp,
                                      builder=slow_builder))
        t.start()
        assert building.wait(5.0)
        # load_only must report "pending" without waiting for the build
        t0 = time.perf_counter()
        plan, source, load_s = reg.get_ex(None, fingerprint=fp,
                                          load_only=True)
        elapsed = time.perf_counter() - t0
        assert (plan, source, load_s) == (None, "pending", 0.0)
        assert elapsed < 1.0
        assert reg.warm(fp) is None     # warm() maps pending -> no-op
        release.set()
        t.join()
        assert reg.peek(fp) is not None


# ----------------------------------------------------------------------
# satellite 3: eviction converges with a shared metrics registry
# ----------------------------------------------------------------------
class TestEvictionConvergence:
    def test_two_registries_shared_obs_keep_newest_plan(self, rng):
        mats = [random_csr(60, 120, rng) for _ in range(4)]
        plans = [DASPMatrix.from_csr(m) for m in mats]
        budget = int(plan_nbytes(plans[0]) * 2.5)
        obs = Obs()
        # two registries share one Obs handle -> the byte *gauge* is the
        # sum of both residents; eviction must key on local accounting
        a = PlanRegistry(budget, obs=obs)
        b = PlanRegistry(budget, obs=obs)
        for m in mats:
            a.get(m)
            b.get(m)
        for reg in (a, b):
            assert len(reg._plans) >= 1          # never evicts to empty
            assert reg.bytes_cached <= reg.budget_bytes
            assert matrix_fingerprint(mats[-1]) in reg
            resident = sum(plan_nbytes(p) for p, _ in reg._plans.values())
            assert reg.bytes_cached == resident  # gauge drift contained
        # the shared gauge reports the true total across both registries
        assert obs.gauge("serve.plan_cache.bytes").value \
            == a.bytes_cached + b.bytes_cached

    def test_oversized_insert_rejected_cache_intact(self, rng):
        from repro.resilience.errors import PlanTooLargeError

        small = random_csr(40, 60, rng)
        big = random_csr(200, 300, rng)
        reg = PlanRegistry(plan_nbytes(DASPMatrix.from_csr(big)) // 2)
        reg.get(small)
        before = reg.bytes_cached
        with pytest.raises(PlanTooLargeError):
            reg.get(big)
        # the resident working set survives the rejected insert
        assert matrix_fingerprint(small) in reg
        assert reg.bytes_cached == before


# ----------------------------------------------------------------------
# the threaded prefetcher (real server's async path)
# ----------------------------------------------------------------------
class TestPlanPrefetcher:
    def test_prefetch_loads_from_store(self, tmp_path, rng):
        csr = random_csr(50, 70, rng)
        fp = matrix_fingerprint(csr)
        store = PlanStore(tmp_path / "s")
        store.put(fp, DASPMatrix.from_csr(csr))
        obs = Obs()
        reg = PlanRegistry(store=store, obs=obs)
        pf = PlanPrefetcher(reg, obs=obs)
        try:
            assert pf.prefetch(fp).result(timeout=10) == "store"
            assert reg.peek(fp) is not None
            assert obs.counter("pipeline.warm_load_total").value == 1
            # idempotent: second prefetch sees the resident plan
            assert pf.prefetch(fp).result(timeout=10) == "ram"
        finally:
            pf.close()

    def test_prefetch_builds_with_csr(self, rng):
        csr = random_csr(30, 40, rng)
        fp = matrix_fingerprint(csr)
        obs = Obs()
        reg = PlanRegistry(obs=obs)
        pf = PlanPrefetcher(reg, obs=obs)
        try:
            assert pf.prefetch(fp, csr).result(timeout=10) == "built"
            assert obs.counter("pipeline.warm_build_total").value == 1
        finally:
            pf.close()

    def test_absent_without_csr(self, rng):
        reg = PlanRegistry()
        pf = PlanPrefetcher(reg)
        try:
            assert pf.prefetch("f" * 16).result(timeout=10) == "absent"
        finally:
            pf.close()

    def test_closed_resolves_absent(self, rng):
        pf = PlanPrefetcher(PlanRegistry())
        pf.close()
        assert pf.prefetch("a" * 16).result(timeout=1) == "absent"

    def test_failure_resolves_not_raises(self, rng):
        csr = random_csr(20, 30, rng)
        obs = Obs()
        pf = PlanPrefetcher(PlanRegistry(obs=obs), obs=obs)

        def bad_builder(matrix):
            raise ValidationError("injected build failure")

        try:
            fut = pf.prefetch(matrix_fingerprint(csr), csr,
                              builder=bad_builder)
            assert fut.result(timeout=10) == "failed"
            assert obs.counter("pipeline.warm_failed_total").value == 1
        finally:
            pf.close()


# ----------------------------------------------------------------------
# virtual-time driver: pipelined execution
# ----------------------------------------------------------------------
def _base_cfg(**overrides):
    kw = dict(n_requests=600, n_matrices=3, seed=11)
    kw.update(overrides)
    return WorkloadConfig(**kw)


class TestDriverPipeline:
    def test_off_is_bit_identical_default(self):
        """pipeline=False must not perturb anything (same RNG stream)."""
        a = run_workload(_base_cfg())
        b = run_workload(_base_cfg(pipeline=False, warmer=False,
                                   spmm_mix=0.0))
        assert a.latencies_s == b.latencies_s
        assert a.device_busy_s == b.device_busy_s
        assert a.preprocess_s == b.preprocess_s

    def test_on_preserves_work_and_results(self):
        off = run_workload(_base_cfg())
        on = run_workload(_base_cfg(pipeline=True))
        # identical traffic, batches and kernel work — only *when* plan
        # acquisition is charged moves (device -> prefetch lane)
        assert on.n_completed == off.n_completed == 600
        assert on.n_batches == off.n_batches
        assert on.batch_hist == off.batch_hist
        # same per-batch kernel times, summed in a different order
        assert on.device_busy_s == pytest.approx(off.device_busy_s,
                                                 rel=1e-12)
        assert on.preprocess_s == pytest.approx(off.preprocess_s,
                                                rel=1e-12)
        assert on.prefetches == 3
        # cold batches parked instead of stalling the device
        assert on.parked_batches > 0
        assert on.duration_s <= off.duration_s

    def test_on_deterministic(self):
        a = run_workload(_base_cfg(pipeline=True, warmer=True))
        b = run_workload(_base_cfg(pipeline=True, warmer=True))
        assert a.latencies_s == b.latencies_s
        assert a.duration_s == b.duration_s

    def test_warmer_prebuilds_before_first_request(self, tmp_path):
        cfg = _base_cfg(n_matrices=4, store=tmp_path / "s")
        run_workload(cfg)   # populate the store
        warm = run_workload(_base_cfg(
            n_matrices=4, store=tmp_path / "s", pipeline=True,
            warmer=WarmerConfig(min_observed=4, max_per_tick=4)))
        assert warm.warms > 0
        assert warm.warm_loads + warm.warm_builds > 0
        assert warm.n_completed == 600
        # warmed loads are cheaper than the cold run's rebuilds
        cold = run_workload(_base_cfg(n_matrices=4))
        assert warm.preprocess_s < cold.preprocess_s

    def test_warm_start_rides_warmer(self, tmp_path):
        cfg = _base_cfg(store=tmp_path / "s")
        run_workload(cfg)
        stats = run_workload(_base_cfg(store=tmp_path / "s",
                                       warm_start=True, warmer=True))
        # every pool matrix is warmed up front; the warmer may re-warm
        # one later if eviction pushes it out mid-run
        assert stats.warm_loads + stats.warm_builds >= 3
        assert stats.n_completed == 600

    def test_attribution_coverage_with_pipeline(self, tmp_path):
        from repro.obs import Tracer

        cfg = _base_cfg(store=tmp_path / "s")
        run_workload(cfg)
        obs = Obs(tracer=Tracer(clock=lambda: 0.0))
        stats = run_workload(_base_cfg(store=tmp_path / "s", pipeline=True,
                                       warmer=True), obs=obs)
        total = stats.device_busy_s + stats.preprocess_s
        att = obs.tracer.attribution(total)
        assert att["coverage"] >= 0.95

    def test_summary_table_has_pipeline_section(self):
        table = run_workload(_base_cfg(pipeline=True)).summary_table()
        assert "prefetches (modeled lane time)" in table
        assert "parked batches" in table
        # pipeline-off tables keep the old shape
        assert "parked" not in run_workload(_base_cfg()).summary_table()


# ----------------------------------------------------------------------
# satellite 2: server consults persisted reorder perms before deriving
# ----------------------------------------------------------------------
class TestServerReorderAux:
    def _csr(self, rng):
        return random_csr(96, 128, rng,
                          row_len_sampler=lambda r, m: r.integers(0, 40, m))

    def test_loaded_perm_bitwise_equals_derived(self, tmp_path, rng):
        from repro.serve import SpMVServer

        csr = self._csr(rng)
        fp = matrix_fingerprint(csr)
        X = rng.uniform(-1, 1, (csr.shape[1], 24))
        ro = reorder_rows(csr)
        store = PlanStore(tmp_path / "s")
        store.put(fp, DASPMatrix.from_csr(csr),
                  aux={"spmm.reorder_perm": ro.perm, "spmm.reorder_inv": ro.inv})

        with SpMVServer(workers=1, store=store) as s:
            s.register(csr)
            fut = s.submit(SpMMRequest(fp, X))
            s.flush()
            y_loaded = fut.result(timeout=10.0)
            obs = s.obs
            assert obs.counter("spmm.reorder.loaded_total").value == 1
            assert obs.counter("spmm.reorder.derived_total").value == 0

        with SpMVServer(workers=1) as s:
            s.register(csr)
            fut = s.submit(SpMMRequest(fp, X))
            s.flush()
            y_derived = fut.result(timeout=10.0)
            assert s.obs.counter("spmm.reorder.derived_total").value == 1
            assert s.obs.counter("spmm.reorder.loaded_total").value == 0

        assert np.array_equal(y_loaded, y_derived)

    def test_counted_once_per_matrix(self, rng):
        from repro.serve import SpMVServer

        csr = self._csr(rng)
        with SpMVServer(workers=1) as s:
            fp = s.register(csr)
            for k in (16, 32):
                fut = s.submit(SpMMRequest(fp, rng.uniform(-1, 1,
                                                           (csr.shape[1], k))))
                s.flush()
                fut.result(timeout=10.0)
            # two (fp, k) strategies, one reorder derivation
            assert s.obs.counter("spmm.reorder.derived_total").value == 1


# ----------------------------------------------------------------------
# warm-path bugfix: gated demand loads must resolve the device preset
# ----------------------------------------------------------------------
class TestDeviceRoundTrip:
    def test_marketing_name_resolves(self):
        spec = get_device("A100")
        assert get_device(spec.name) is spec
        assert get_device("A100-PCIe-40GB") is spec
        with pytest.raises(ValidationError):
            get_device("TPU")

    def test_demand_path_loads_from_populated_store(self, tmp_path):
        """Regression: the replica handed the store its device's
        marketing name (``A100-PCIe-40GB``); the load-vs-rebuild gate
        could not resolve it, every gated demand load raised, and a
        restart over a populated store silently served 100% of its
        traffic from the degraded fallback path."""
        cfg = _base_cfg(store=tmp_path / "s")
        run_workload(cfg)                      # publish artifacts
        restarted = run_workload(_base_cfg(store=tmp_path / "s"))
        assert restarted.degraded_requests == 0
        assert restarted.n_failed == 0
        # first touches now read the artifacts back (or the gate
        # legitimately priced a rebuild cheaper — but never an error)
        assert restarted.store_loads + restarted.cache_misses > 0
        assert restarted.n_completed == 600


# ----------------------------------------------------------------------
# satellite 4: SpMM blocks through the virtual-time driver
# ----------------------------------------------------------------------
class TestDriverSpmmMix:
    def test_mix_zero_is_bit_identical(self):
        a = run_workload(_base_cfg())
        b = run_workload(_base_cfg(spmm_mix=0.0, spmm_ks=(16, 999)))
        assert a.latencies_s == b.latencies_s

    def test_mix_serves_blocks_with_strategies(self):
        stats = run_workload(_base_cfg(spmm_mix=0.3, spmm_ks=(16, 64)))
        assert stats.n_completed == 600
        by_strat = stats.spmm_large_by_strategy
        assert sum(by_strat.values()) > 0
        assert set(by_strat) <= {"looped", "tiled", "reordered"}

    def test_mix_deterministic(self):
        a = run_workload(_base_cfg(spmm_mix=0.3))
        b = run_workload(_base_cfg(spmm_mix=0.3))
        assert a.latencies_s == b.latencies_s
        assert a.spmm_large_by_strategy == b.spmm_large_by_strategy

    def test_mix_with_pipeline_preserves_counts(self):
        off = run_workload(_base_cfg(spmm_mix=0.25))
        on = run_workload(_base_cfg(spmm_mix=0.25, pipeline=True))
        assert on.n_completed == off.n_completed
        assert on.spmm_large_by_strategy == off.spmm_large_by_strategy
        assert on.device_busy_s == pytest.approx(off.device_busy_s,
                                                 rel=1e-12)

    def test_cluster_n1_spmv_parity_with_pipeline(self):
        from repro.cluster import ClusterConfig, run_cluster_workload
        from repro.matrices import synthetic_collection

        kw = dict(n_requests=800, seed=11,
                  entries=synthetic_collection(3, seed=5), pipeline=True)
        single = run_workload(WorkloadConfig(**kw))
        cluster = run_cluster_workload(ClusterConfig(n_replicas=1, **kw))
        (replica,) = cluster.replicas.values()
        assert single.latencies_s == replica.latencies_s
        assert single.device_busy_s == replica.device_busy_s
        assert single.parked_batches == replica.parked_batches

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_workload(_base_cfg(spmm_mix=1.5))
