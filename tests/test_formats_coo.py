"""Tests for the COO format."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.formats import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(coo.to_dense(), small_dense)

    def test_from_dense_drops_zeros(self):
        coo = COOMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert coo.nnz == 1

    def test_rejects_out_of_bounds_row(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_rejects_out_of_bounds_col(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_rejects_negative_index(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_empty_matrix(self):
        coo = COOMatrix((3, 4), [], [], [])
        assert coo.nnz == 0
        assert coo.to_dense().shape == (3, 4)


class TestTransformations:
    def test_sum_duplicates(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0])
        summed = coo.sum_duplicates()
        assert summed.nnz == 2
        dense = summed.to_dense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 4.0

    def test_sum_duplicates_empty(self):
        assert COOMatrix((2, 2), [], [], []).sum_duplicates().nnz == 0

    def test_eliminate_zeros(self):
        coo = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 2.0])
        assert coo.eliminate_zeros().nnz == 1

    def test_transpose(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(coo.transpose().to_dense(), small_dense.T)

    def test_astype(self):
        coo = COOMatrix((1, 1), [0], [0], [1.5])
        assert coo.astype(np.float16).val.dtype == np.float16


class TestConversion:
    def test_to_csr_matches_dense(self, small_dense):
        csr = COOMatrix.from_dense(small_dense).to_csr()
        assert np.array_equal(csr.to_dense(), small_dense)

    def test_to_csr_sums_duplicates(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert COOMatrix.from_dense(coo.to_csr().to_dense()).nnz == 1
        assert coo.to_csr().to_dense()[0, 1] == 5.0

    def test_to_csr_sorted_columns(self, rng):
        m, n = 20, 30
        rows = rng.integers(0, m, 100)
        cols = rng.integers(0, n, 100)
        coo = COOMatrix((m, n), rows, cols, np.ones(100))
        assert coo.to_csr().has_sorted_indices()

    def test_matvec_matches_dense(self, small_dense, rng):
        coo = COOMatrix.from_dense(small_dense)
        x = rng.standard_normal(small_dense.shape[1])
        assert np.allclose(coo.matvec(x), small_dense @ x)

    def test_matvec_counts_duplicates(self):
        coo = COOMatrix((1, 1), [0, 0], [0, 0], [1.0, 2.0])
        assert coo.matvec(np.array([2.0]))[0] == pytest.approx(6.0)

    def test_matvec_rejects_bad_x(self):
        coo = COOMatrix((2, 3), [0], [0], [1.0])
        with pytest.raises(ValidationError):
            coo.matvec(np.zeros(2))
