"""Tests for DASPMethod (the SpMVMethod wrapper) and preprocessing."""

import numpy as np
import pytest

from repro.core import DASPMethod, dasp_preprocess_events, timed_preprocess
from repro.gpu import A100, estimate_preprocess_time
from tests.conftest import random_csr


class TestMethodInterface:
    def test_prepare_run(self, profiled_matrix, rng):
        method = DASPMethod()
        plan = method.prepare(profiled_matrix)
        x = rng.standard_normal(profiled_matrix.shape[1])
        assert np.allclose(method.run(plan, x), profiled_matrix.matvec(x),
                           rtol=1e-11)

    def test_supports_all_floats(self):
        method = DASPMethod()
        assert method.supports(np.float64)
        assert method.supports(np.float16)
        assert not method.supports(np.int32)

    def test_measure(self, rng):
        csr = random_csr(50, 60, rng)
        meas = DASPMethod().measure(csr, "A100", matrix_name="t")
        assert meas.time_s > 0 and meas.method == "DASP"
        assert meas.gflops > 0

    def test_events_combine_categories(self, rng):
        csr = random_csr(80, 900, rng,
                         row_len_sampler=lambda r, m: np.where(
                             r.random(m) < 0.1, r.integers(257, 400, m),
                             r.integers(0, 30, m)))
        ev = DASPMethod().events(DASPMethod().prepare(csr), A100)
        assert ev.flops_mma > 0
        assert ev.bytes_total > 0

    def test_launch_chain_long_rows(self, rng):
        with_long = random_csr(16, 800, rng,
                               row_len_sampler=lambda r, m: np.full(m, 300))
        without = random_csr(16, 800, rng,
                             row_len_sampler=lambda r, m: np.full(m, 50))
        method = DASPMethod()
        ev_long = method.events(method.prepare(with_long), A100)
        ev_med = method.events(method.prepare(without), A100)
        assert ev_long.kernel_launches >= 2
        assert ev_med.kernel_launches < 2

    def test_spmv_convenience(self, rng):
        csr = random_csr(20, 20, rng)
        x = rng.standard_normal(20)
        assert np.allclose(DASPMethod().spmv(csr, x), csr.matvec(x))

    def test_custom_parameters_forwarded(self, rng):
        csr = random_csr(30, 400, rng,
                         row_len_sampler=lambda r, m: np.full(m, 100))
        plan = DASPMethod(max_len=64, threshold=0.5).prepare(csr)
        assert plan.max_len == 64 and plan.threshold == 0.5


class TestPreprocess:
    def test_events_scale_with_nnz(self, rng):
        small = DASPMethod().prepare(random_csr(20, 50, rng))
        big = DASPMethod().prepare(random_csr(400, 800, rng))
        t_small = estimate_preprocess_time(dasp_preprocess_events(small), A100)
        t_big = estimate_preprocess_time(dasp_preprocess_events(big), A100)
        assert t_big > t_small

    def test_sort_keys_equal_medium_rows(self, rng):
        csr = random_csr(50, 400, rng,
                         row_len_sampler=lambda r, m: r.integers(5, 50, m))
        plan = DASPMethod().prepare(csr)
        ev = dasp_preprocess_events(plan)
        assert ev.sort_keys == plan.classification.n_medium

    def test_timed_preprocess(self, rng):
        csr = random_csr(100, 100, rng)
        dasp, secs = timed_preprocess(csr)
        assert secs > 0
        assert dasp.nnz == csr.nnz
