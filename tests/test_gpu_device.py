"""Tests for device specifications."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.gpu import A100, DEVICES, H800, DeviceSpec, get_device


class TestPresets:
    def test_a100_table1_numbers(self):
        """Table 1: A100 FP64 TC 19.5 TFlops, FP16 TC 312, 1555 GB/s."""
        assert A100.fp64_tensor_tflops == 19.5
        assert A100.fp16_tensor_tflops == 312.0
        assert A100.mem_bw_gbs == 1555.0
        assert A100.arch == "Ampere"

    def test_h800_table1_numbers(self):
        """Table 1: H800 FP16 TC 756 TFlops, 2048 GB/s."""
        assert H800.fp16_tensor_tflops == 756.0
        assert H800.mem_bw_gbs == 2048.0
        assert H800.arch == "Hopper"

    def test_measured_below_theoretical(self):
        for dev in DEVICES.values():
            assert dev.measured_bw < dev.mem_bw

    def test_registry_contains_both(self):
        assert set(DEVICES) == {"A100", "H800"}


class TestDerivedRates:
    def test_mem_bw_si(self):
        assert A100.mem_bw == pytest.approx(1.555e12)

    def test_cuda_flops_fp64(self):
        assert A100.cuda_flops(64) == pytest.approx(9.7e12)

    def test_cuda_flops_fp16_uses_fp32_rate(self):
        assert A100.cuda_flops(16) == pytest.approx(19.5e12)

    def test_tensor_flops(self):
        assert A100.tensor_flops(64) == pytest.approx(19.5e12)
        assert H800.tensor_flops(16) == pytest.approx(756e12)

    def test_launch_overhead_seconds(self):
        assert A100.launch_overhead_s == pytest.approx(A100.launch_overhead_us * 1e-6)

    def test_concurrency_positive(self):
        assert A100.concurrency == 108 * 64 * 32


class TestGetDevice:
    def test_by_name_case_insensitive(self):
        assert get_device("a100") is A100
        assert get_device("H800") is H800

    def test_passthrough(self):
        assert get_device(A100) is A100

    def test_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown device"):
            get_device("V100")


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "y", 0, 1.0, 100.0, 0.9, 1 << 20, 1, 1, 1, 1)

    def test_rejects_bad_triad_efficiency(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "y", 4, 1.0, 100.0, 1.5, 1 << 20, 1, 1, 1, 1)

    def test_frozen(self):
        with pytest.raises(Exception):
            A100.sms = 1
