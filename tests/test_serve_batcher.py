"""Tests for the request batcher (size/timeout triggers, per-matrix
queues, scatter)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.serve import Batch, RequestBatcher, SpMVRequest


def req(i, fp="A", t=0.0, n=4):
    return SpMVRequest(req_id=i, fingerprint=fp, x=np.full(n, float(i)),
                       arrival_s=t)


class TestSizeTrigger:
    def test_fills_to_max_batch(self):
        b = RequestBatcher(max_batch=3, flush_timeout_s=1.0)
        assert b.add(req(0), 0.0) is None
        assert b.add(req(1), 0.0) is None
        full = b.add(req(2), 0.0)
        assert isinstance(full, Batch) and full.k == 3
        assert [r.req_id for r in full.requests] == [0, 1, 2]  # FIFO
        assert b.pending_count() == 0

    def test_max_batch_one_is_request_at_a_time(self):
        b = RequestBatcher(max_batch=1)
        full = b.add(req(0), 0.0)
        assert full is not None and full.k == 1

    def test_per_matrix_isolation(self):
        b = RequestBatcher(max_batch=2)
        assert b.add(req(0, "A"), 0.0) is None
        assert b.add(req(1, "B"), 0.0) is None
        full = b.add(req(2, "A"), 0.0)
        assert full.fingerprint == "A" and full.k == 2
        assert b.pending_count("B") == 1


class TestTimeoutTrigger:
    def test_due_after_timeout(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.5)
        b.add(req(0, t=1.0), 1.0)
        assert b.due(1.4) == []
        flushed = b.due(1.6)
        assert len(flushed) == 1 and flushed[0].k == 1

    def test_next_deadline(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.5)
        assert b.next_deadline() == float("inf")
        b.add(req(0, "A", t=2.0), 2.0)
        b.add(req(1, "B", t=1.0), 2.0)
        assert b.next_deadline() == pytest.approx(1.5)

    def test_due_flushes_multiple_groups(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.1)
        b.add(req(0, "A", t=0.0), 0.0)
        b.add(req(1, "B", t=0.0), 0.0)
        assert len(b.due(1.0)) == 2


class TestFlush:
    def test_flush_one(self):
        b = RequestBatcher(max_batch=8)
        b.add(req(0, "A"), 0.0)
        assert b.flush("A", 0.1).k == 1
        assert b.flush("A", 0.1) is None

    def test_flush_all(self):
        b = RequestBatcher(max_batch=8)
        b.add(req(0, "A"), 0.0)
        b.add(req(1, "B"), 0.0)
        b.add(req(2, "B"), 0.0)
        batches = b.flush_all(0.5)
        assert sorted(x.fingerprint for x in batches) == ["A", "B"]
        assert sum(x.k for x in batches) == 3
        assert b.pending_count() == 0


class TestBatchObject:
    def test_assemble_and_scatter(self):
        requests = [req(i, n=3) for i in range(2)]
        batch = Batch("A", requests, formed_s=1.0)
        X = batch.assemble_x()
        assert X.shape == (3, 2)
        assert np.all(X[:, 1] == 1.0)
        Y = np.arange(10).reshape(5, 2).astype(float)
        batch.scatter(Y, completion_s=2.0)
        assert np.all(requests[0].result == Y[:, 0])
        assert requests[1].completion_s == 2.0
        assert requests[1].latency_s == pytest.approx(2.0)


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValidationError):
            RequestBatcher(max_batch=0)

    def test_bad_timeout(self):
        with pytest.raises(ValidationError):
            RequestBatcher(flush_timeout_s=-1.0)


class TestScatterCopies:
    def test_results_are_owned_copies(self):
        """Regression: scatter used to hand out column *views*, pinning
        the whole (n, k) SpMM output alive behind every result."""
        requests = [req(i, n=3) for i in range(4)]
        batch = Batch("A", requests, formed_s=0.0)
        Y = np.arange(12, dtype=float).reshape(3, 4)
        batch.scatter(Y, completion_s=1.0)
        for j, r in enumerate(requests):
            assert r.result.base is None          # owns its memory
            assert r.result.flags["C_CONTIGUOUS"]
            assert np.all(r.result == Y[:, j])
        Y[:] = -1.0  # mutating the batch output must not reach results
        assert np.all(requests[0].result == [0.0, 4.0, 8.0])


class TestOverflowStarvation:
    def test_due_drains_oversized_group_in_one_pass(self):
        """Regression: a group holding more than max_batch requests
        (2*max_batch+1 simultaneous arrivals re-queued under
        backpressure) was flushed one batch per due() poll — the
        remainder starved a full timeout window per batch."""
        from collections import deque

        b = RequestBatcher(max_batch=8, flush_timeout_s=0.1)
        b._pending["A"] = deque(req(i, "A", t=0.0) for i in range(17))
        b._push_head("A", b._pending["A"])
        batches = b.due(1.0)  # all 17 are long overdue
        assert [x.k for x in batches] == [8, 8, 1]
        assert b.pending_count() == 0
        # FIFO preserved across the split
        ids = [r.req_id for x in batches for r in x.requests]
        assert ids == list(range(17))

    def test_due_respects_timeout_of_remainder(self):
        """After forming a full batch, the remainder's own oldest
        arrival decides whether it flushes now or waits."""
        from collections import deque

        b = RequestBatcher(max_batch=8, flush_timeout_s=0.5)
        old = [req(i, "A", t=0.0) for i in range(8)]
        fresh = [req(8, "A", t=0.95)]
        b._pending["A"] = deque(old + fresh)
        b._push_head("A", b._pending["A"])
        batches = b.due(1.0)  # old 8 overdue; the fresh one is not
        assert [x.k for x in batches] == [8]
        assert b.pending_count("A") == 1


class TestSplitExpiredPartition:
    def test_partition_is_permutation(self):
        """Property: expired + survivors is a permutation of the batch,
        including requests expiring exactly at now == deadline_s."""
        rng = np.random.default_rng(42)
        for trial in range(25):
            n = int(rng.integers(1, 12))
            now = 5.0
            reqs = []
            for i in range(n):
                r = req(i, "A", t=0.0)
                # mix: clearly expired, exactly-at-deadline, alive
                r.deadline_s = float(rng.choice([now - 1.0, now, now + 1.0]))
                reqs.append(r)
            batch = Batch("A", list(reqs), formed_s=0.0)
            expired = batch.split_expired(now)
            assert sorted(r.req_id for r in expired + batch.requests) \
                == list(range(n))
            assert all(r.expired(now) for r in expired)
            assert all(not r.expired(now) for r in batch.requests)
            # now == deadline counts as expired (>= semantics)
            assert all(r.deadline_s > now for r in batch.requests)
            # relative order preserved on both sides
            assert [r.req_id for r in expired] == sorted(
                r.req_id for r in expired)
            assert [r.req_id for r in batch.requests] == sorted(
                r.req_id for r in batch.requests)


class _ScanBatcher(RequestBatcher):
    """Reference implementation: the pre-heap O(matrices)-per-event
    scan over every pending group.  Kept verbatim as the behavioural
    and wall-clock baseline for the heap-indexed batcher."""

    def due(self, now):
        batches = []
        with self._lock:
            for fp in list(self._pending):
                while True:
                    q = self._pending.get(fp)
                    if not q or now - q[0].arrival_s < self.flush_timeout_s:
                        break
                    batches.append(self._form(fp, now))
            return batches

    def next_deadline(self):
        with self._lock:
            arrivals = [q[0].arrival_s for q in self._pending.values() if q]
            if not arrivals:
                return float("inf")
            return min(arrivals) + self.flush_timeout_s


class TestHeapIndexAB:
    """The heap-indexed deadline tracking must be observably identical
    to the reference scan — and faster on a wide matrix pool, where the
    scan pays O(matrices) per arrival event."""

    N_MATRICES = 256
    N_REQUESTS = 30_000

    def _trace(self, seed=7):
        rng = np.random.default_rng(seed)
        t = np.cumsum(rng.exponential(20e-6, self.N_REQUESTS))
        fps = rng.zipf(1.3, self.N_REQUESTS) % self.N_MATRICES
        return [(float(t[i]), f"m{fps[i]}") for i in range(self.N_REQUESTS)]

    def _drive(self, batcher, trace):
        """Replay the serve-sim event loop (timeout flushes between
        arrivals, size trigger on add) and fingerprint every batch."""
        out = []
        for now, fp in trace:
            while True:
                deadline = batcher.next_deadline()
                if deadline >= now:
                    break
                out.extend(batcher.due(np.nextafter(deadline, np.inf)))
            full = batcher.add(
                SpMVRequest(req_id=len(out), fingerprint=fp,
                            x=np.zeros(2), arrival_s=now), now)
            if full is not None:
                out.append(full)
        out.extend(batcher.flush_all(trace[-1][0] + 1.0))
        return [(b.fingerprint, b.formed_s, [r.arrival_s for r in b.requests])
                for b in out]

    def test_identical_batches_and_faster(self):
        import time

        trace = self._trace()
        timings = {}
        results = {}
        for name, cls in (("scan", _ScanBatcher), ("heap", RequestBatcher)):
            best = float("inf")
            for _ in range(3):
                # 1 ms timeout keeps many groups concurrently pending —
                # the regime where the scan pays O(matrices) per event
                b = cls(max_batch=8, flush_timeout_s=1e-3)
                t0 = time.perf_counter()
                results[name] = self._drive(b, trace)
                best = min(best, time.perf_counter() - t0)
            timings[name] = best
        # A/B equivalence: same batches, same contents, same order
        assert results["heap"] == results["scan"]
        # A/B wall clock: ~2x here; the loose factor absorbs CI noise
        assert timings["heap"] <= timings["scan"] * 0.9, timings
