"""Tests for the request batcher (size/timeout triggers, per-matrix
queues, scatter)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.serve import Batch, RequestBatcher, SpMVRequest


def req(i, fp="A", t=0.0, n=4):
    return SpMVRequest(req_id=i, fingerprint=fp, x=np.full(n, float(i)),
                       arrival_s=t)


class TestSizeTrigger:
    def test_fills_to_max_batch(self):
        b = RequestBatcher(max_batch=3, flush_timeout_s=1.0)
        assert b.add(req(0), 0.0) is None
        assert b.add(req(1), 0.0) is None
        full = b.add(req(2), 0.0)
        assert isinstance(full, Batch) and full.k == 3
        assert [r.req_id for r in full.requests] == [0, 1, 2]  # FIFO
        assert b.pending_count() == 0

    def test_max_batch_one_is_request_at_a_time(self):
        b = RequestBatcher(max_batch=1)
        full = b.add(req(0), 0.0)
        assert full is not None and full.k == 1

    def test_per_matrix_isolation(self):
        b = RequestBatcher(max_batch=2)
        assert b.add(req(0, "A"), 0.0) is None
        assert b.add(req(1, "B"), 0.0) is None
        full = b.add(req(2, "A"), 0.0)
        assert full.fingerprint == "A" and full.k == 2
        assert b.pending_count("B") == 1


class TestTimeoutTrigger:
    def test_due_after_timeout(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.5)
        b.add(req(0, t=1.0), 1.0)
        assert b.due(1.4) == []
        flushed = b.due(1.6)
        assert len(flushed) == 1 and flushed[0].k == 1

    def test_next_deadline(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.5)
        assert b.next_deadline() == float("inf")
        b.add(req(0, "A", t=2.0), 2.0)
        b.add(req(1, "B", t=1.0), 2.0)
        assert b.next_deadline() == pytest.approx(1.5)

    def test_due_flushes_multiple_groups(self):
        b = RequestBatcher(max_batch=8, flush_timeout_s=0.1)
        b.add(req(0, "A", t=0.0), 0.0)
        b.add(req(1, "B", t=0.0), 0.0)
        assert len(b.due(1.0)) == 2


class TestFlush:
    def test_flush_one(self):
        b = RequestBatcher(max_batch=8)
        b.add(req(0, "A"), 0.0)
        assert b.flush("A", 0.1).k == 1
        assert b.flush("A", 0.1) is None

    def test_flush_all(self):
        b = RequestBatcher(max_batch=8)
        b.add(req(0, "A"), 0.0)
        b.add(req(1, "B"), 0.0)
        b.add(req(2, "B"), 0.0)
        batches = b.flush_all(0.5)
        assert sorted(x.fingerprint for x in batches) == ["A", "B"]
        assert sum(x.k for x in batches) == 3
        assert b.pending_count() == 0


class TestBatchObject:
    def test_assemble_and_scatter(self):
        requests = [req(i, n=3) for i in range(2)]
        batch = Batch("A", requests, formed_s=1.0)
        X = batch.assemble_x()
        assert X.shape == (3, 2)
        assert np.all(X[:, 1] == 1.0)
        Y = np.arange(10).reshape(5, 2).astype(float)
        batch.scatter(Y, completion_s=2.0)
        assert np.all(requests[0].result == Y[:, 0])
        assert requests[1].completion_s == 2.0
        assert requests[1].latency_s == pytest.approx(2.0)


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValidationError):
            RequestBatcher(max_batch=0)

    def test_bad_timeout(self):
        with pytest.raises(ValidationError):
            RequestBatcher(flush_timeout_s=-1.0)
