"""Tests for matrix .npz persistence."""

import numpy as np
import pytest

from repro._util import ReproError, ValidationError
from repro.matrices import load_collection, load_csr, save_collection, save_csr
from tests.conftest import random_csr


class TestSingleMatrix:
    def test_roundtrip(self, tmp_path, rng):
        csr = random_csr(40, 50, rng)
        save_csr(tmp_path / "m.npz", csr)
        back = load_csr(tmp_path / "m.npz")
        assert back.shape == csr.shape
        assert np.array_equal(back.indptr, csr.indptr)
        assert np.array_equal(back.indices, csr.indices)
        assert np.array_equal(back.data, csr.data)

    def test_fp16_dtype_preserved(self, tmp_path, rng):
        csr = random_csr(10, 10, rng, dtype=np.float16)
        save_csr(tmp_path / "h.npz", csr)
        assert load_csr(tmp_path / "h.npz").data.dtype == np.float16

    def test_empty_matrix(self, tmp_path):
        from repro.formats import CSRMatrix

        save_csr(tmp_path / "e.npz", CSRMatrix.empty((7, 3)))
        back = load_csr(tmp_path / "e.npz")
        assert back.shape == (7, 3) and back.nnz == 0

    def test_creates_parent_dirs(self, tmp_path, rng):
        path = tmp_path / "deep" / "dir" / "m.npz"
        save_csr(path, random_csr(5, 5, rng))
        assert load_csr(path).shape == (5, 5)

    def test_version_check(self, tmp_path, rng):
        csr = random_csr(5, 5, rng)
        np.savez_compressed(tmp_path / "bad.npz", version=np.int64(99),
                            name="x", shape=np.asarray(csr.shape),
                            indptr=csr.indptr, indices=csr.indices,
                            data=csr.data)
        with pytest.raises(ValidationError, match="version"):
            load_csr(tmp_path / "bad.npz")


class TestCollection:
    def test_roundtrip(self, tmp_path, rng):
        matrices = {f"m{i}": random_csr(10 + i, 12, rng) for i in range(4)}
        save_collection(tmp_path / "col", matrices)
        back = load_collection(tmp_path / "col")
        assert set(back) == set(matrices)
        for name in matrices:
            assert np.array_equal(back[name].to_dense(),
                                  matrices[name].to_dense())

    def test_manifest_written(self, tmp_path, rng):
        save_collection(tmp_path / "col", {"a": random_csr(4, 4, rng)})
        assert (tmp_path / "col" / "index.txt").read_text().strip() == "a"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError, match="manifest"):
            load_collection(tmp_path)

    def test_bad_name_rejected(self, tmp_path, rng):
        with pytest.raises(ValidationError):
            save_collection(tmp_path / "col", {"a/b": random_csr(4, 4, rng)})

    def test_accepts_pairs(self, tmp_path, rng):
        save_collection(tmp_path / "col", [("x", random_csr(4, 4, rng))])
        assert "x" in load_collection(tmp_path / "col")


class TestLoad:
    """repro.matrices.load — the one public matrix-loading entry point."""

    def test_named_suite_entry(self):
        from repro.matrices import load, suite_by_name

        csr = load("scircuit")
        ref = suite_by_name("scircuit").matrix()
        assert csr.shape == ref.shape and csr.nnz == ref.nnz

    def test_npz_path(self, tmp_path, rng):
        from repro.matrices import load

        csr = random_csr(12, 9, rng)
        save_csr(tmp_path / "m.npz", csr)
        back = load(tmp_path / "m.npz")
        assert np.array_equal(back.to_dense(), csr.to_dense())

    def test_mtx_path(self, tmp_path, rng):
        from repro.formats import write_matrix_market
        from repro.matrices import load

        csr = random_csr(10, 10, rng)
        write_matrix_market(csr, tmp_path / "m.mtx")
        back = load(tmp_path / "m.mtx")
        assert np.allclose(back.to_dense(), csr.to_dense())

    def test_unsupported_extension(self, tmp_path):
        from repro.matrices import load

        path = tmp_path / "m.bin"
        path.write_bytes(b"\x00")
        with pytest.raises(ReproError, match="unsupported extension"):
            load(path)

    def test_unknown_name_raises(self):
        from repro.matrices import load

        with pytest.raises(KeyError, match="no-such-matrix"):
            load("no-such-matrix")

    def test_cli_shim_warns_but_works(self):
        from repro.cli import _load_matrix
        from repro.matrices import load

        with pytest.warns(DeprecationWarning, match="repro.matrices.load"):
            csr = _load_matrix("scircuit")
        assert csr.nnz == load("scircuit").nnz
