"""Tests for the TileSpMV baseline."""

import numpy as np
import pytest

from repro.baselines import TILE, TileSpMVMethod, build_tiles
from repro.baselines.tilespmv import FMT_COO, FMT_DENSE, FMT_DENSE_ROW, FMT_ELL
from repro.formats import CSRMatrix
from repro.gpu import A100
from tests.conftest import random_csr


class TestTiling:
    def test_tile_positions_cover_all_entries(self, rng):
        csr = random_csr(70, 90, rng)
        plan = build_tiles(csr)
        assert int(plan.tile_counts().sum()) == csr.nnz

    def test_entries_stay_inside_their_tile(self, rng):
        csr = random_csr(70, 90, rng)
        plan = build_tiles(csr)
        tile_of_entry = np.repeat(np.arange(plan.ntiles), plan.tile_counts())
        rows = plan.tile_row[tile_of_entry] * TILE + plan.local_r
        cols = plan.tile_col[tile_of_entry] * TILE + plan.local_c
        orig_rows = np.repeat(np.arange(70), csr.row_lengths())[plan.order]
        assert np.array_equal(rows, orig_rows)
        assert np.array_equal(cols, csr.indices[plan.order])

    def test_dense_tile_detected(self):
        d = np.zeros((16, 16))
        d[:, :] = 1.0
        plan = build_tiles(CSRMatrix.from_dense(d))
        assert plan.ntiles == 1
        assert plan.tile_fmt[0] == FMT_DENSE

    def test_sparse_tile_is_coo(self):
        d = np.zeros((16, 16))
        d[0, 0] = d[13, 9] = 1.0
        plan = build_tiles(CSRMatrix.from_dense(d))
        assert plan.tile_fmt[0] == FMT_COO

    def test_dense_row_tile(self):
        d = np.zeros((16, 16))
        d[3, :] = 1.0
        plan = build_tiles(CSRMatrix.from_dense(d))
        assert plan.tile_fmt[0] == FMT_DENSE_ROW

    def test_ell_like_tile(self):
        d = np.zeros((16, 16))
        d[:, 0:2] = 1.0  # every row exactly 2 entries
        plan = build_tiles(CSRMatrix.from_dense(d))
        assert plan.tile_fmt[0] == FMT_ELL

    def test_format_histogram_sums(self, rng):
        csr = random_csr(100, 100, rng)
        plan = build_tiles(csr)
        assert sum(plan.format_histogram().values()) == plan.ntiles

    def test_empty_matrix(self):
        plan = build_tiles(CSRMatrix.empty((5, 5)))
        assert plan.ntiles == 0


class TestKernel:
    def test_matches_reference(self, profiled_matrix, rng):
        method = TileSpMVMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = method.run(method.prepare(profiled_matrix), x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_empty(self):
        method = TileSpMVMethod()
        y = method.run(method.prepare(CSRMatrix.empty((4, 4))), np.ones(4))
        assert np.array_equal(y, np.zeros(4))


class TestEvents:
    def test_no_fp16(self):
        assert not TileSpMVMethod().supports(np.float16)

    def test_scattered_matrix_heavy_metadata(self, rng):
        """kron-style scatter: ~1 entry per tile makes metadata dominate —
        the paper's explanation for TileSpMV's worst cases."""
        scattered = random_csr(400, 6400, rng,
                               row_len_sampler=lambda r, m: np.full(m, 4))
        blocked = random_csr(400, 430, rng,
                             row_len_sampler=lambda r, m: np.full(m, 4))
        method = TileSpMVMethod()
        ev_s = method.events(method.prepare(scattered), A100)
        ev_b = method.events(method.prepare(blocked), A100)
        # metadata bytes per nonzero much higher for the scattered case
        assert ev_s.bytes_ptr / scattered.nnz > 2 * ev_b.bytes_ptr / blocked.nnz

    def test_dense_tiles_cost_padding_flops(self):
        d = np.zeros((16, 16))
        d[:8, :] = 1.0  # half-full tile stored dense
        method = TileSpMVMethod()
        csr = CSRMatrix.from_dense(d)
        ev = method.events(method.prepare(csr), A100)
        assert ev.flops_cuda == 2.0 * 256  # full tile multiplied

    def test_preprocess_host_passes(self, rng):
        csr = random_csr(50, 50, rng)
        method = TileSpMVMethod()
        pe = method.preprocess_events(method.prepare(csr))
        assert pe.host_bytes > 0 and pe.sort_keys == csr.nnz


class TestEllPaddingAccounting:
    def test_ell_tile_pads_to_max_row(self):
        """An ELL tile with rows of population {2,2,2,4} stores 4 slots
        per occupied row."""
        d = np.zeros((16, 16))
        d[0:4, 0:2] = 1.0   # four rows of 2
        d[0, 2:4] = 1.0     # first row gets 4
        method = TileSpMVMethod()
        plan = method.prepare(CSRMatrix.from_dense(d))
        assert plan.tile_fmt[0] == FMT_ELL
        ev = method.events(plan, A100)
        # 4 occupied rows x width 4 = 16 slots -> 16 * 8 bytes of values
        assert ev.bytes_val == 16 * 8

    def test_uniform_ell_tile_no_padding(self):
        d = np.zeros((16, 16))
        d[:, 0:3] = 1.0
        method = TileSpMVMethod()
        plan = method.prepare(CSRMatrix.from_dense(d))
        assert plan.tile_fmt[0] == FMT_ELL
        ev = method.events(plan, A100)
        assert ev.bytes_val == 48 * 8
