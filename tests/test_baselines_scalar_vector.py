"""Tests for the CSR-scalar / CSR-vector kernels and the registry."""

import numpy as np
import pytest

from repro.baselines import (
    CSRScalarMethod,
    CSRVectorMethod,
    PAPER_METHODS,
    all_method_names,
    make_method,
    paper_methods,
)
from repro.gpu import A100
from tests.conftest import random_csr


class TestScalar:
    def test_matches_reference(self, profiled_matrix, rng):
        method = CSRScalarMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        assert np.allclose(method.run(method.prepare(profiled_matrix), x),
                           profiled_matrix.matvec(x))

    def test_divergence_on_skew(self, rng):
        lens = np.full(64, 2, dtype=np.int64)
        lens[0] = 2000
        skewed = random_csr(64, 4000, rng, row_len_sampler=lambda r, m: lens)
        uniform = random_csr(64, 4000, rng,
                             row_len_sampler=lambda r, m: np.full(m, 33))
        method = CSRScalarMethod()
        ev_s = method.events(method.prepare(skewed), A100)
        ev_u = method.events(method.prepare(uniform), A100)
        assert ev_s.imbalance > 5 * ev_u.imbalance

    def test_serial_path_is_longest_row(self, rng):
        lens = np.full(64, 2, dtype=np.int64)
        lens[0] = 2000
        csr = random_csr(64, 4000, rng, row_len_sampler=lambda r, m: lens)
        method = CSRScalarMethod()
        ev = method.events(method.prepare(csr), A100)
        assert ev.serial_iters == csr.row_lengths().max()

    def test_no_preprocessing(self, rng):
        method = CSRScalarMethod()
        pe = method.preprocess_events(method.prepare(random_csr(5, 5, rng)))
        assert pe.device_bytes == 0 and pe.host_bytes == 0


class TestVector:
    def test_matches_reference(self, profiled_matrix, rng):
        method = CSRVectorMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        assert np.allclose(method.run(method.prepare(profiled_matrix), x),
                           profiled_matrix.matvec(x))

    def test_short_rows_waste_lanes(self, rng):
        short = random_csr(256, 300, rng,
                           row_len_sampler=lambda r, m: np.full(m, 2))
        long_rows = random_csr(16, 3000, rng,
                               row_len_sampler=lambda r, m: np.full(m, 512))
        method = CSRVectorMethod()
        ev_short = method.events(method.prepare(short), A100)
        ev_long = method.events(method.prepare(long_rows), A100)
        assert ev_short.imbalance > 10  # 2/32 lanes used
        assert ev_long.imbalance == pytest.approx(1.0, abs=0.05)


class TestRegistry:
    def test_paper_methods_complete(self):
        methods = paper_methods()
        assert [m.name for m in methods] == list(PAPER_METHODS)

    def test_make_method_roundtrip(self):
        for name in all_method_names():
            assert make_method(name).name == name

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_method("SuperSpMV9000")

    def test_all_methods_agree_on_result(self, rng):
        csr = random_csr(80, 120, rng)
        x = rng.standard_normal(120)
        ref = csr.matvec(x)
        for name in all_method_names():
            method = make_method(name)
            y = method.run(method.prepare(csr), x)
            assert np.allclose(y, ref, rtol=1e-10), name
