"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240)


@pytest.mark.parametrize("script,expect", [
    ("quickstart.py", "lane-accurate warp engine matches"),
    ("iterative_solver.py", "amortized speedup"),
    ("mixed_precision.py", "final FP64 residual"),
    ("block_eigensolver.py", "max eigenpair residual"),
])
def test_example_runs(script, expect):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


def test_matrix_explorer_default():
    proc = run_example("matrix_explorer.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "fastest (model)" in proc.stdout


def test_matrix_explorer_named():
    proc = run_example("matrix_explorer.py", "mc2depi")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "mc2depi" in proc.stdout
