"""Tests for MMA fragment layouts and the functional MMA unit."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.gpu import (
    FP16_M8N8K4,
    FP64_M8N8K4,
    FULL_MASK,
    MmaShape,
    MmaUnit,
    Warp,
    frag_a_from_matrix,
    frag_b_from_matrix,
    frag_c_from_matrix,
    matrix_from_frag_a,
    matrix_from_frag_b,
    matrix_from_frag_c,
    mma_m8n8k4,
    shape_for_dtype,
)


class TestFragmentLayouts:
    def test_a_roundtrip(self, rng):
        a = rng.standard_normal((8, 4))
        assert np.array_equal(matrix_from_frag_a(frag_a_from_matrix(a)), a)

    def test_b_roundtrip(self, rng):
        b = rng.standard_normal((4, 8))
        assert np.array_equal(matrix_from_frag_b(frag_b_from_matrix(b)), b)

    def test_c_roundtrip(self, rng):
        c = rng.standard_normal((8, 8))
        assert np.array_equal(matrix_from_frag_c(frag_c_from_matrix(c)), c)

    def test_a_layout_matches_paper_idx(self, rng):
        """The paper's idx = (3 & lane) + (lane >> 2) * MMA_K addresses a
        row-major 8x4 block; the A fragment must follow it."""
        a = rng.standard_normal((8, 4))
        lane = np.arange(32)
        idx = (3 & lane) + (lane >> 2) * 4
        assert np.array_equal(frag_a_from_matrix(a), a.reshape(-1)[idx])

    def test_b_is_a_transposed_lanewise(self, rng):
        """Lane l holds A[l>>2, l&3] and B[l&3, l>>2]: loading fragX with
        the same idx as fragA builds B = gathered-x transposed, which is
        what makes the diagonal of A@B the row dot products."""
        vals = rng.standard_normal(32)
        a = matrix_from_frag_a(vals)
        b = matrix_from_frag_b(vals)
        assert np.array_equal(b, a.T)

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValidationError):
            frag_a_from_matrix(np.zeros((4, 8)))
        with pytest.raises(ValidationError):
            frag_b_from_matrix(np.zeros((8, 4)))
        with pytest.raises(ValidationError):
            frag_c_from_matrix(np.zeros((4, 4)))


class TestMmaM8N8K4:
    def test_matches_gemm(self, rng):
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 8))
        c = rng.standard_normal((8, 8))
        w = Warp()
        acc = mma_m8n8k4(w, frag_c_from_matrix(c), frag_a_from_matrix(a),
                         frag_b_from_matrix(b))
        assert np.allclose(matrix_from_frag_c(acc), a @ b + c)

    def test_counts_issues(self, rng):
        w = Warp()
        acc = frag_c_from_matrix(np.zeros((8, 8)))
        fa = frag_a_from_matrix(np.zeros((8, 4)))
        fb = frag_b_from_matrix(np.zeros((4, 8)))
        mma_m8n8k4(w, acc, fa, fb)
        mma_m8n8k4(w, acc, fa, fb)
        assert w.mma_count == 2

    def test_diagonal_extraction_long_rows(self, rng):
        """Full Algorithm 2 reduction: shfl_down 9, 18, then shfl 4."""
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 8))
        w = Warp()
        acc = mma_m8n8k4(w, frag_c_from_matrix(np.zeros((8, 8))),
                         frag_a_from_matrix(a), frag_b_from_matrix(b))
        f0, f1 = acc[:, 0].copy(), acc[:, 1].copy()
        f0 = f0 + w.shfl_down_sync(FULL_MASK, f0, 9)
        f0 = f0 + w.shfl_down_sync(FULL_MASK, f0, 18)
        f1 = f1 + w.shfl_down_sync(FULL_MASK, f1, 9)
        f1 = f1 + w.shfl_down_sync(FULL_MASK, f1, 18)
        f0 = f0 + w.shfl_sync(FULL_MASK, f1, 4)
        assert f0[0] == pytest.approx(np.trace(a @ b))

    @pytest.mark.parametrize("i", [0, 1, 2, 3])
    def test_diagonal_extraction_medium_rows(self, rng, i):
        """Algorithm 3's target = ((lane - 8i) >> 1) * 9 extraction places
        C[r, r] at lane 8i + r for every loop index i."""
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 8))
        w = Warp()
        acc = mma_m8n8k4(w, frag_c_from_matrix(np.zeros((8, 8))),
                         frag_a_from_matrix(a), frag_b_from_matrix(b))
        lane = np.arange(32)
        target = ((lane - i * 8) >> 1) * 9
        g0 = w.shfl_sync(FULL_MASK, acc[:, 0], target)
        g1 = w.shfl_sync(FULL_MASK, acc[:, 1], target + 4)
        res = np.where((lane & 1) == 0, g0, g1)
        sel = (lane >> 3) == i
        assert np.allclose(res[sel], np.diag(a @ b))


class TestMmaUnit:
    def test_fp64_exact(self, rng):
        unit = MmaUnit(FP64_M8N8K4)
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 8))
        c = rng.standard_normal((8, 8))
        assert np.allclose(unit.mma(a, b, c), a @ b + c)

    def test_fp16_inputs_rounded(self):
        unit = MmaUnit(FP16_M8N8K4)
        a = np.full((8, 4), 1.0 / 3.0)
        b = np.zeros((4, 8))
        b[:, 0] = 1.0
        out = unit.mma(a, b, np.zeros((8, 8)))
        third_fp16 = np.float32(np.float16(1.0 / 3.0))
        assert out.dtype == np.float32
        assert out[0, 0] == pytest.approx(4 * third_fp16, rel=1e-7)

    def test_fp16_accumulates_fp32(self):
        """Products that would overflow FP16 accumulate safely in FP32."""
        unit = MmaUnit(FP16_M8N8K4)
        a = np.full((8, 4), 200.0)
        b = np.full((4, 8), 200.0)
        out = unit.mma(a, b, np.zeros((8, 8)))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(160000.0)

    def test_block_row_dots_matches_diag(self, rng):
        unit = MmaUnit(FP64_M8N8K4)
        a = rng.standard_normal((5, 8, 4))
        x = rng.standard_normal((5, 8, 4))
        out = unit.block_row_dots(a, x)
        assert out.shape == (5, 8)
        assert np.allclose(out, (a * x).sum(axis=2))

    def test_block_row_dots_counts_blocks(self, rng):
        unit = MmaUnit(FP64_M8N8K4)
        unit.block_row_dots(np.zeros((7, 8, 4)), np.zeros((7, 8, 4)))
        assert unit.issue_count == 7

    def test_mma_validates_shapes(self):
        unit = MmaUnit(FP64_M8N8K4)
        with pytest.raises(ValidationError):
            unit.mma(np.zeros((4, 8)), np.zeros((4, 8)), np.zeros((8, 8)))


class TestShapes:
    def test_flops(self):
        assert FP64_M8N8K4.flops == 512
        assert FP64_M8N8K4.a_elements == 32

    def test_shape_for_dtype(self):
        assert shape_for_dtype(np.float64) is FP64_M8N8K4
        assert shape_for_dtype(np.float16) is FP16_M8N8K4
        assert shape_for_dtype(np.float32).in_dtype == np.float32

    def test_shape_for_unknown_dtype(self):
        with pytest.raises(TypeError):
            shape_for_dtype(np.int32)

    def test_custom_shape(self):
        s = MmaShape(16, 8, 8, np.dtype(np.float16), np.dtype(np.float32), "t")
        assert s.flops == 2 * 16 * 8 * 8
