"""Tests for the DASPMatrix container."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix
from repro.formats import CSRMatrix
from tests.conftest import random_csr


class TestFromCsr:
    def test_shape_and_dtype(self, profiled_matrix):
        dasp = DASPMatrix.from_csr(profiled_matrix)
        assert dasp.shape == profiled_matrix.shape
        assert dasp.dtype == profiled_matrix.data.dtype

    def test_nnz_preserved(self, profiled_matrix):
        dasp = DASPMatrix.from_csr(profiled_matrix)
        assert dasp.nnz == profiled_matrix.nnz

    def test_stored_at_least_nnz(self, profiled_matrix):
        dasp = DASPMatrix.from_csr(profiled_matrix)
        assert dasp.stored_elements >= dasp.nnz
        assert dasp.padding_ratio >= 1.0

    def test_fp16_selects_fp16_shape(self, rng):
        csr = random_csr(20, 30, rng, dtype=np.float16)
        dasp = DASPMatrix.from_csr(csr)
        assert dasp.mma_shape.in_dtype == np.float16
        assert dasp.mma_shape.acc_dtype == np.float32

    def test_dtype_shape_mismatch_rejected(self, rng):
        from repro.gpu.mma import FP16_M8N8K4

        csr = random_csr(10, 10, rng)  # float64
        with pytest.raises(ValidationError):
            DASPMatrix.from_csr(csr, mma_shape=FP16_M8N8K4)

    def test_custom_max_len(self, rng):
        csr = random_csr(40, 600, rng,
                         row_len_sampler=lambda r, m: np.full(m, 100))
        dasp = DASPMatrix.from_csr(csr, max_len=64)
        assert dasp.classification.n_long == 40

    def test_category_nnz_sums(self, profiled_matrix):
        dasp = DASPMatrix.from_csr(profiled_matrix)
        assert sum(dasp.category_nnz().values()) == dasp.nnz

    def test_empty_matrix(self):
        dasp = DASPMatrix.from_csr(CSRMatrix.empty((7, 7)))
        assert dasp.nnz == 0
        assert dasp.classification.n_empty == 7
        assert dasp.padding_ratio == 1.0

    def test_summary_mentions_counts(self, profiled_matrix):
        dasp = DASPMatrix.from_csr(profiled_matrix)
        text = dasp.summary()
        assert "DASP" in text and "padding" in text

    def test_rel19_style_low_fill(self, rng):
        """The paper quotes 0.85% zero fill for 'rel19' (all short rows);
        a matrix of only 1/2/3-length rows should pad very little."""
        csr = random_csr(4000, 800, rng,
                         row_len_sampler=lambda r, m: r.integers(1, 4, m))
        dasp = DASPMatrix.from_csr(csr)
        assert dasp.padding_ratio < 1.25
