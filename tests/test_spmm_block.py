"""Tests for the large-k SpMM tier (`repro.core.spmm_block`)."""

import numpy as np
import pytest

from repro.core import DASPMatrix, dasp_spmv
from repro.core.spmm import dasp_spmm, dasp_spmm_on_plan, spmm_events
from repro.core.spmm_block import (
    DEFAULT_TILE_K,
    TILE_K_CANDIDATES,
    build_block_plan,
    choose_spmm_strategy,
    dasp_spmm_large,
    dasp_spmm_tiled,
    reorder_rows,
    spmm_block_events,
    spmm_looped_cost,
)
from repro.gpu import estimate_time
from repro.gpu.tiles import mma_tile_stats, tile_gather_bytes
from tests.conftest import ROW_PROFILES, random_csr


def column_wise_reference(plan, X):
    """The ground truth every strategy must match bitwise."""
    return np.stack([dasp_spmv(plan, X[:, j]) for j in range(X.shape[1])],
                    axis=1)


class TestTiledExecution:
    @pytest.mark.parametrize("tile_k", TILE_K_CANDIDATES)
    def test_bitwise_vs_untiled(self, rng, tile_k):
        csr = random_csr(120, 300, rng)
        plan = DASPMatrix.from_csr(csr)
        X = rng.uniform(-1, 1, (300, 96))
        Y = dasp_spmm_tiled(plan, X, tile_k=tile_k)
        assert np.array_equal(Y, dasp_spmm_on_plan(plan, X))

    def test_ragged_last_tile(self, rng):
        csr = random_csr(64, 200, rng)
        plan = DASPMatrix.from_csr(csr)
        X = rng.uniform(-1, 1, (200, 50))  # 50 = 32 + 18
        Y = dasp_spmm_tiled(plan, X, tile_k=32)
        assert np.array_equal(Y, column_wise_reference(plan, X))

    def test_rejects_bad_tile_k(self, rng):
        from repro._util import ValidationError

        csr = random_csr(16, 40, rng)
        plan = DASPMatrix.from_csr(csr)
        X = rng.uniform(-1, 1, (40, 16))
        with pytest.raises(ValidationError):
            dasp_spmm_tiled(plan, X, tile_k=12)  # not a multiple of 8
        with pytest.raises(ValidationError):
            dasp_spmm_tiled(plan, X[:, 0], tile_k=8)  # 1-D


class TestRowReorder:
    @pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
    def test_valid_permutation(self, rng, profile):
        csr = random_csr(96, 400, rng, row_len_sampler=ROW_PROFILES[profile])
        ro = reorder_rows(csr)
        m = csr.shape[0]
        assert np.array_equal(np.sort(ro.perm), np.arange(m))
        assert np.array_equal(ro.perm[ro.inv], np.arange(m))

    @pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
    def test_never_worse_than_natural(self, rng, profile):
        csr = random_csr(96, 400, rng, row_len_sampler=ROW_PROFILES[profile])
        ro = reorder_rows(csr)
        assert ro.stats.padding_slots <= ro.natural_stats.padding_slots
        assert 0.0 <= ro.padding_reduction <= 1.0

    def test_reduces_padding_on_bimodal_rows(self, rng):
        """Alternating short/medium rows leave half-empty tiles in
        natural order; grouping by length packs them densely."""
        lens = lambda r, m: np.where(np.arange(m) % 2 == 0,
                                     r.integers(1, 3, m),
                                     r.integers(24, 32, m))
        csr = random_csr(256, 600, rng, row_len_sampler=lens)
        ro = reorder_rows(csr)
        assert not ro.is_identity
        assert ro.stats.padding_slots < ro.natural_stats.padding_slots
        assert ro.padding_reduction > 0.0

    def test_block_plan_output_bitwise_invariant(self, rng):
        csr = random_csr(128, 350, rng,
                         row_len_sampler=ROW_PROFILES["skewed"])
        plan = DASPMatrix.from_csr(csr)
        bp = build_block_plan(plan)
        X = rng.uniform(-1, 1, (350, 64))
        Yp = dasp_spmm_tiled(bp.plan, X, tile_k=DEFAULT_TILE_K)
        assert np.array_equal(Yp[bp.inv], dasp_spmm_on_plan(plan, X))


class TestStrategyBitwise:
    @pytest.mark.parametrize("profile", sorted(ROW_PROFILES))
    def test_all_strategies_match_columnwise_spmv(self, rng, profile):
        csr = random_csr(80, 250, rng, row_len_sampler=ROW_PROFILES[profile])
        plan = DASPMatrix.from_csr(csr)
        X = rng.uniform(-1, 1, (250, 40))
        ref = column_wise_reference(plan, X)
        for k_strategy in ("looped", "tiled", "reordered"):
            strat = choose_spmm_strategy(plan, 40)
            # force each execution path regardless of the tuner choice
            if k_strategy == "reordered":
                from dataclasses import replace
                strat = replace(strat, name="reordered",
                                block_plan=build_block_plan(plan))
            else:
                from dataclasses import replace
                strat = replace(strat, name=k_strategy, block_plan=None)
            assert np.array_equal(dasp_spmm_large(plan, X, strat), ref), \
                k_strategy


class TestTuner:
    def test_small_k_stays_looped(self, rng):
        csr = random_csr(64, 200, rng)
        plan = DASPMatrix.from_csr(csr)
        for k in (1, 4, 8):
            strat = choose_spmm_strategy(plan, k)
            assert strat.name == "looped"
            assert strat.speedup == 1.0

    def test_large_k_beats_looped(self, rng):
        csr = random_csr(400, 900, rng,
                         row_len_sampler=ROW_PROFILES["mixed"])
        plan = DASPMatrix.from_csr(csr)
        strat = choose_spmm_strategy(plan, 128)
        assert strat.name in ("tiled", "reordered")
        assert strat.modeled_s <= strat.looped_s
        assert strat.tile_k % 8 == 0 and strat.tile_k in TILE_K_CANDIDATES

    def test_reorder_flag_disables_reordered(self, rng):
        csr = random_csr(200, 500, rng,
                         row_len_sampler=ROW_PROFILES["skewed"])
        plan = DASPMatrix.from_csr(csr)
        strat = choose_spmm_strategy(plan, 256, reorder=False)
        assert strat.name in ("looped", "tiled")
        assert strat.block_plan is None

    def test_looped_cost_matches_event_model(self, rng):
        csr = random_csr(64, 200, rng)
        plan = DASPMatrix.from_csr(csr)
        per_batch = estimate_time(spmm_events(plan, "A100", 8), "A100",
                                  dtype_bits=64).total
        assert spmm_looped_cost(plan, "A100", 64) == pytest.approx(
            8 * per_batch)


class TestBlockEvents:
    def test_serial_iters_scale_with_column_tiles(self, rng):
        csr = random_csr(100, 300, rng)
        plan = DASPMatrix.from_csr(csr)
        ev32 = spmm_block_events(plan, "A100", 128, tile_k=32)
        ev64 = spmm_block_events(plan, "A100", 128, tile_k=64)
        assert ev32.serial_iters == 2 * ev64.serial_iters

    def test_tile_stats_counters_consistent(self, rng):
        csr = random_csr(96, 280, rng)
        stats = mma_tile_stats(csr)
        assert stats.padding_slots == stats.slots - stats.nnz
        assert 0.0 <= stats.occupancy <= 1.0
        assert 0.0 < stats.union_ratio <= 1.0
        assert stats.occupancy + stats.padding_waste == pytest.approx(1.0)
        assert tile_gather_bytes(stats, 8, 64, 32) > 0
