"""Tests for the iterative solver layer."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.baselines import CSR5Method, MergeCSRMethod
from repro.formats import CSRMatrix
from repro.solvers import SpMVOperator, bicgstab, conjugate_gradient, jacobi


def spd_matrix(n, rng, density=0.1):
    d = rng.standard_normal((n, n))
    d[rng.random((n, n)) > density] = 0.0
    sym = d @ d.T + np.eye(n) * (np.abs(d).sum() / n + 1.0)
    return CSRMatrix.from_dense(sym), sym


def dominant_matrix(n, rng, density=0.15):
    d = rng.standard_normal((n, n))
    d[rng.random((n, n)) > density] = 0.0
    np.fill_diagonal(d, np.abs(d).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(d), d


class TestOperator:
    def test_counts_applications(self, rng):
        csr, _ = dominant_matrix(20, rng)
        op = SpMVOperator(csr)
        op.apply(np.ones(20))
        op.apply(np.ones(20))
        assert op.applications == 2

    def test_matmul_syntax(self, rng):
        csr, dense = dominant_matrix(20, rng)
        op = SpMVOperator(csr)
        assert np.allclose(op @ np.ones(20), dense @ np.ones(20))

    def test_custom_method(self, rng):
        csr, dense = dominant_matrix(20, rng)
        op = SpMVOperator(csr, method=CSR5Method())
        assert np.allclose(op.apply(np.ones(20)), dense @ np.ones(20))

    def test_modeled_cost(self, rng):
        csr, _ = dominant_matrix(30, rng)
        op = SpMVOperator(csr)
        for _ in range(5):
            op.apply(np.ones(30))
        cost = op.modeled_cost("A100")
        assert cost["applications"] == 5
        assert cost["total_s"] == pytest.approx(
            cost["preprocess_s"] + 5 * cost["per_spmv_s"])

    def test_dtype_check(self, rng):
        csr, _ = dominant_matrix(10, rng)
        with pytest.raises(ValidationError):
            SpMVOperator(csr.astype(np.float16), method=CSR5Method())


class TestCG:
    def test_solves_spd(self, rng):
        csr, dense = spd_matrix(60, rng)
        b = rng.standard_normal(60)
        res = conjugate_gradient(csr, b, tol=1e-12)
        assert res.converged
        assert np.allclose(dense @ res.x, b, atol=1e-7)

    def test_residual_history_decreases(self, rng):
        csr, _ = spd_matrix(40, rng)
        res = conjugate_gradient(csr, rng.standard_normal(40), tol=1e-12)
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_jacobi_preconditioner_helps_or_matches(self, rng):
        csr, dense = spd_matrix(50, rng)
        diag = np.diagonal(dense).copy()
        b = rng.standard_normal(50)
        plain = conjugate_gradient(csr, b, tol=1e-10)
        pre = conjugate_gradient(csr, b, tol=1e-10, preconditioner=diag)
        assert pre.converged
        assert pre.iterations <= plain.iterations * 2

    def test_requires_square(self, rng):
        from tests.conftest import random_csr

        with pytest.raises(ValidationError):
            conjugate_gradient(random_csr(4, 6, rng), np.zeros(6))

    def test_wrong_b(self, rng):
        csr, _ = spd_matrix(10, rng)
        with pytest.raises(ValidationError):
            conjugate_gradient(csr, np.zeros(9))

    def test_max_iter_limits(self, rng):
        csr, _ = spd_matrix(60, rng)
        res = conjugate_gradient(csr, rng.standard_normal(60), tol=1e-14,
                                 max_iter=2)
        assert not res.converged and res.iterations == 2

    def test_accepts_operator(self, rng):
        csr, dense = spd_matrix(30, rng)
        op = SpMVOperator(csr)
        res = conjugate_gradient(op, rng.standard_normal(30))
        assert res.converged
        assert op.applications == res.iterations


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self, rng):
        csr, dense = dominant_matrix(60, rng)
        b = rng.standard_normal(60)
        res = bicgstab(csr, b, tol=1e-11)
        assert res.converged
        assert np.allclose(dense @ res.x, b, atol=1e-6)

    def test_matches_numpy_solution(self, rng):
        csr, dense = dominant_matrix(40, rng)
        b = rng.standard_normal(40)
        res = bicgstab(csr, b, tol=1e-12)
        assert np.allclose(res.x, np.linalg.solve(dense, b), atol=1e-7)

    def test_uses_merge_method(self, rng):
        csr, dense = dominant_matrix(30, rng)
        op = SpMVOperator(csr, method=MergeCSRMethod())
        res = bicgstab(op, rng.standard_normal(30))
        assert res.converged


class TestJacobi:
    def test_solves_dominant(self, rng):
        csr, dense = dominant_matrix(50, rng)
        b = rng.standard_normal(50)
        res = jacobi(csr, b, tol=1e-11)
        assert res.converged
        assert np.allclose(dense @ res.x, b, atol=1e-7)

    def test_rejects_zero_diagonal(self, rng):
        d = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValidationError):
            jacobi(CSRMatrix.from_dense(d), np.ones(2))

    def test_large_matrix_diagonal_extraction(self, rng):
        """n > 2048 exercises the sparse diagonal extraction path."""
        n = 2100
        diag_vals = rng.uniform(5, 10, n)
        off = np.arange(n - 1)
        from repro.formats import COOMatrix

        rows = np.concatenate([np.arange(n), off])
        cols = np.concatenate([np.arange(n), off + 1])
        vals = np.concatenate([diag_vals, rng.uniform(-1, 1, n - 1)])
        csr = COOMatrix((n, n), rows, cols, vals).to_csr()
        b = rng.standard_normal(n)
        res = jacobi(csr, b, tol=1e-10)
        assert res.converged
