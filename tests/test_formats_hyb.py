"""Tests for the HYB (ELL+COO hybrid) format."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, HYBMatrix, to_csr
from tests.conftest import random_csr


class TestSplit:
    def test_roundtrip(self, rng):
        csr = random_csr(50, 40, rng)
        assert np.allclose(HYBMatrix.from_csr(csr).to_csr().to_dense(),
                           csr.to_dense())

    def test_width_quantile_default(self, rng):
        csr = random_csr(200, 100, rng,
                         row_len_sampler=lambda r, m: (r.pareto(1.5, m) * 3
                                                       ).astype(np.int64) + 1)
        hyb = HYBMatrix.from_csr(csr)
        lens = csr.row_lengths()
        # 90% of rows fit entirely in the ELL part
        assert np.mean(lens <= hyb.width) >= 0.85

    def test_explicit_width(self, rng):
        csr = random_csr(30, 30, rng)
        hyb = HYBMatrix.from_csr(csr, width=2)
        assert hyb.width == 2
        expected_overflow = int(np.maximum(csr.row_lengths() - 2, 0).sum())
        assert hyb.coo.nnz == expected_overflow

    def test_width_zero_all_coo(self, rng):
        csr = random_csr(20, 20, rng)
        hyb = HYBMatrix.from_csr(csr, width=0)
        assert hyb.ell.nnz == 0 and hyb.coo.nnz == csr.nnz

    def test_huge_width_all_ell(self, rng):
        csr = random_csr(20, 20, rng)
        hyb = HYBMatrix.from_csr(csr, width=25)
        assert hyb.coo.nnz == 0 and hyb.ell.nnz == csr.nnz

    def test_nnz_conserved(self, profiled_matrix):
        hyb = HYBMatrix.from_csr(profiled_matrix)
        assert hyb.nnz == profiled_matrix.nnz

    def test_overflow_fraction(self, rng):
        csr = random_csr(30, 30, rng)
        hyb = HYBMatrix.from_csr(csr, width=1)
        assert 0.0 <= hyb.overflow_fraction <= 1.0

    def test_empty_matrix(self):
        hyb = HYBMatrix.from_csr(CSRMatrix.empty((5, 5)))
        assert hyb.nnz == 0
        assert np.array_equal(hyb.matvec(np.ones(5)), np.zeros(5))


class TestMatvec:
    def test_matches_reference(self, profiled_matrix, rng):
        hyb = HYBMatrix.from_csr(profiled_matrix)
        x = rng.standard_normal(profiled_matrix.shape[1])
        assert np.allclose(hyb.matvec(x), profiled_matrix.matvec(x))

    @pytest.mark.parametrize("width", [0, 1, 3, 10])
    def test_any_split_correct(self, rng, width):
        csr = random_csr(40, 40, rng)
        hyb = HYBMatrix.from_csr(csr, width=width)
        x = rng.standard_normal(40)
        assert np.allclose(hyb.matvec(x), csr.matvec(x))

    def test_to_csr_funnel(self, rng):
        csr = random_csr(15, 15, rng)
        assert np.allclose(to_csr(HYBMatrix.from_csr(csr)).to_dense(),
                           csr.to_dense())
