"""Unit tests for `repro.resilience` — injector, retry, breaker, fallback."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core.preprocess import dasp_preprocess
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    NO_RETRY,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    FallbackExecutor,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KernelFault,
    PreprocessFault,
    RetryPolicy,
)
from tests.conftest import random_csr


class TestFaultInjector:
    def test_rate_one_always_fires(self):
        inj = FaultInjector(FaultPlan([FaultRule(kind="kernel_error")]))
        for _ in range(5):
            with pytest.raises(KernelFault):
                inj.check_kernel("fp")
        assert inj.counts["kernel_error"] == 5

    def test_rate_zero_never_fires(self):
        inj = FaultInjector(FaultPlan([FaultRule(kind="kernel_error",
                                                 rate=0.0)]))
        for _ in range(50):
            inj.check_kernel("fp")
        assert inj.total_injected == 0

    def test_deterministic_given_seed(self):
        def trace(seed):
            inj = FaultInjector(FaultPlan(
                [FaultRule(kind="kernel_error", rate=0.3)], seed=seed))
            out = []
            for _ in range(200):
                try:
                    inj.check_kernel("fp")
                    out.append(0)
                except KernelFault:
                    out.append(1)
            return out

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)

    def test_max_count_limits_firings(self):
        inj = FaultInjector(FaultPlan(
            [FaultRule(kind="kernel_error", max_count=2)]))
        for _ in range(2):
            with pytest.raises(KernelFault):
                inj.check_kernel("fp")
        inj.check_kernel("fp")  # exhausted: no raise
        assert inj.counts["kernel_error"] == 2

    def test_fingerprint_scoping(self):
        inj = FaultInjector(FaultPlan(
            [FaultRule(kind="kernel_error", fingerprint="bad")]))
        inj.check_kernel("good")  # unaffected
        with pytest.raises(KernelFault):
            inj.check_kernel("bad")

    def test_nan_rule_sets_corrupt_and_poisons(self):
        inj = FaultInjector(FaultPlan([FaultRule(kind="kernel_nan")]))
        decision = inj.check_kernel("fp")
        assert decision.corrupt
        Y = np.ones((4, 3))
        inj.corrupt_output(Y)
        assert np.isnan(Y).sum() == 1

    def test_latency_rules_respect_stage(self):
        inj = FaultInjector(FaultPlan([
            FaultRule(kind="latency", stage="kernel", latency_s=1e-3),
            FaultRule(kind="latency", stage="preprocess", latency_s=2e-3),
        ]))
        assert inj.check_kernel("fp").latency_s == pytest.approx(1e-3)
        assert inj.check_preprocess("fp") == pytest.approx(2e-3)

    def test_cache_pressure_shrinks_budget(self):
        inj = FaultInjector(FaultPlan(
            [FaultRule(kind="cache_pressure", budget_factor=0.25)]))
        assert inj.effective_budget(1000) == 250
        no_rules = FaultInjector(FaultPlan([]))
        assert no_rules.effective_budget(1000) == 1000

    def test_chaos_mix_splits_rate(self):
        plan = FaultPlan.chaos_mix(0.08, seed=9)
        assert len(plan.rules) == 4
        assert all(r.rate == pytest.approx(0.02) for r in plan.rules)
        assert plan.seed == 9

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FaultRule(kind="meteor_strike")

    def test_snapshot_counts_by_kind(self):
        inj = FaultInjector(FaultPlan([
            FaultRule(kind="latency", latency_s=1e-6),
            FaultRule(kind="kernel_nan"),
        ]))
        inj.check_kernel("fp")
        assert inj.snapshot() == {"latency": 1, "kernel_nan": 1}
        assert inj.total_injected == 2


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        p = RetryPolicy(base_delay_s=1e-4, multiplier=2.0, jitter=0.0)
        assert p.backoff_s(1) == pytest.approx(1e-4)
        assert p.backoff_s(2) == pytest.approx(2e-4)
        assert p.backoff_s(3) == pytest.approx(4e-4)

    def test_backoff_capped_at_max_delay(self):
        p = RetryPolicy(base_delay_s=1e-3, multiplier=10.0,
                        max_delay_s=5e-3, jitter=0.0)
        assert p.backoff_s(5) == pytest.approx(5e-3)

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(base_delay_s=1e-4, jitter=0.5)
        draws = [p.backoff_s(1, np.random.default_rng(7)) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]  # seeded
        rng = np.random.default_rng(7)
        for _ in range(100):
            d = p.backoff_s(1, rng)
            assert 0.5e-4 <= d <= 1e-4  # within [1-jitter, 1] x nominal

    def test_retry_is_one_based(self):
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=0.0).backoff_s(0)

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_retries == 0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=3))
        for t in range(2):
            br.record_failure("fp", float(t))
        assert br.state("fp") == CLOSED
        br.record_failure("fp", 2.0)
        assert br.state("fp") == OPEN
        assert not br.allow("fp", 2.01)

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=2))
        br.record_failure("fp", 0.0)
        br.record_success("fp", 0.1)
        br.record_failure("fp", 0.2)
        assert br.state("fp") == CLOSED  # streak broken

    def test_half_open_probe_recloses_on_success(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                          recovery_s=1.0))
        br.record_failure("fp", 0.0)
        assert not br.allow("fp", 0.5)       # still cooling down
        assert br.allow("fp", 1.5)           # admitted as probe
        assert br.state("fp") == HALF_OPEN
        br.record_success("fp", 1.6)
        assert br.state("fp") == CLOSED

    def test_half_open_probe_failure_reopens(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                          recovery_s=1.0))
        br.record_failure("fp", 0.0)
        assert br.allow("fp", 1.5)
        br.record_failure("fp", 1.6)
        assert br.state("fp") == OPEN
        assert not br.allow("fp", 1.7)       # cooldown restarts at 1.6
        assert br.allow("fp", 2.7)

    def test_keys_are_independent(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=1))
        br.record_failure("a", 0.0)
        assert br.state("a") == OPEN
        assert br.state("b") == CLOSED
        assert br.allow("b", 0.0)

    def test_transitions_counted_and_snapshotted(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                          recovery_s=0.0))
        br.record_failure("fp", 0.0)   # closed -> open
        br.allow("fp", 0.0)            # open -> half_open
        br.record_success("fp", 0.0)   # half_open -> closed
        assert br.transitions == 3
        assert br.snapshot() == {"fp": CLOSED}


class TestFallbackExecutor:
    def test_matches_reference_matvec(self, rng):
        csr = random_csr(60, 80, rng)
        fb = FallbackExecutor("A100")
        X = rng.standard_normal((80, 4))
        Y = fb.run("fp", csr, X)
        ref = np.stack([csr.matvec(X[:, j]) for j in range(4)], axis=1)
        np.testing.assert_allclose(Y, ref, rtol=1e-12)

    def test_singleton_column(self, rng):
        csr = random_csr(30, 40, rng)
        fb = FallbackExecutor("A100")
        x = rng.standard_normal(40)
        Y = fb.run("fp", csr, x[:, None])
        np.testing.assert_allclose(Y[:, 0], csr.matvec(x), rtol=1e-12)

    def test_cost_scales_with_k_and_charges_pre_once(self, rng):
        csr = random_csr(50, 60, rng)
        fb = FallbackExecutor("A100")
        t1, pre1 = fb.modeled_cost("fp", csr, 1)
        t4, pre2 = fb.modeled_cost("fp", csr, 4)
        assert pre1 > 0.0
        assert pre2 == 0.0          # partition pass charged once
        assert t4 == pytest.approx(4 * t1)  # no SpMM fusion in fallback


class TestDaspPreprocessHook:
    def test_no_injector_is_plain_conversion(self, rng):
        csr = random_csr(40, 50, rng)
        plan, latency = dasp_preprocess(csr)
        assert latency == 0.0
        x = rng.standard_normal(50)
        from repro.core.spmv import dasp_spmv
        np.testing.assert_allclose(dasp_spmv(plan, x), csr.matvec(x),
                                   rtol=1e-10)

    def test_injected_preprocess_fault(self, rng):
        csr = random_csr(40, 50, rng)
        inj = FaultInjector(FaultPlan([FaultRule(kind="preprocess_error")]))
        with pytest.raises(PreprocessFault):
            dasp_preprocess(csr, injector=inj, fingerprint="fp")

    def test_injected_preprocess_latency(self, rng):
        csr = random_csr(40, 50, rng)
        inj = FaultInjector(FaultPlan(
            [FaultRule(kind="latency", stage="preprocess", latency_s=3e-3)]))
        _, latency = dasp_preprocess(csr, injector=inj, fingerprint="fp")
        assert latency == pytest.approx(3e-3)
