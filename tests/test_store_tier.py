"""Tests for the two-tier plan cache (RAM registry over the disk store)
and warm-start serving.

Covers the tier contract: write-through on build, spill-on-evict,
load-before-build with the cost gate, load-through for plans over the
RAM budget (no more :class:`PlanTooLargeError` when a store is
configured), quarantine-and-rebuild on corruption, and end-to-end
server/driver warm starts with bitwise-identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DASPMatrix
from repro.obs import Obs, Tracer
from repro.resilience import PlanTooLargeError
from repro.serve import (
    PlanRegistry,
    SpMVServer,
    WorkloadConfig,
    matrix_fingerprint,
    plan_nbytes,
    run_workload,
)
from repro.store import (
    PlanStore,
    load_beats_rebuild,
    modeled_load_time,
    modeled_rebuild_time,
    read_header,
)

from .conftest import ROW_PROFILES, random_csr


def _mk_csr(seed: int, m=64, n=400, profile="medium"):
    rng = np.random.default_rng(seed)
    return random_csr(m, n, rng, row_len_sampler=ROW_PROFILES[profile])


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "store")


def test_registry_opens_pathlike_store(tmp_path):
    reg = PlanRegistry(store=tmp_path / "store")
    assert isinstance(reg.store, PlanStore)
    assert (tmp_path / "store" / "plans").is_dir()


def test_build_writes_through(store):
    reg = PlanRegistry(store=store)
    csr = _mk_csr(0)
    fp = matrix_fingerprint(csr)
    plan, source, load_s = reg.get_ex(csr, fingerprint=fp)
    assert source == "built" and load_s == 0.0
    assert fp in store  # write-through persisted the artifact
    assert store.snapshot()["writes"] == 1


def test_miss_loads_from_store_before_building(store):
    csr = _mk_csr(1)
    fp = matrix_fingerprint(csr)
    reg1 = PlanRegistry(store=store)
    built, _, _ = reg1.get_ex(csr, fingerprint=fp)
    # a fresh registry (fresh process) sharing the store loads, not builds
    reg2 = PlanRegistry(store=store)
    plan, source, load_s = reg2.get_ex(csr, fingerprint=fp)
    assert source == "store" and load_s > 0.0
    assert np.array_equal(plan.long_plan.val, built.long_plan.val)
    snap = reg2.snapshot()
    assert snap["store_loads"] == 1 and snap["misses"] == 1
    # now cached in RAM: next lookup is a pure RAM hit
    _, source, _ = reg2.get_ex(csr, fingerprint=fp)
    assert source == "ram"


def test_spill_on_evict_and_reload(tmp_path):
    csr_a, csr_b = _mk_csr(2), _mk_csr(3)
    plan_a = DASPMatrix.from_csr(csr_a)
    budget = plan_nbytes(plan_a) + 16  # room for ~one plan
    store = PlanStore(tmp_path / "store")
    reg = PlanRegistry(budget, store=store)
    fa, fb = matrix_fingerprint(csr_a), matrix_fingerprint(csr_b)
    reg.get_ex(csr_a, fingerprint=fa)
    reg.get_ex(csr_b, fingerprint=fb)  # evicts A from RAM
    assert reg.evictions == 1
    assert fa in store and fb in store
    # A comes back from disk, not a rebuild
    _, source, load_s = reg.get_ex(csr_a, fingerprint=fa)
    assert source == "store" and load_s > 0


def test_spill_counts_only_unpersisted(tmp_path, monkeypatch):
    """Eviction of a plan the store already holds is a no-op spill."""
    store = PlanStore(tmp_path / "store")
    csr_a, csr_b = _mk_csr(4), _mk_csr(5)
    plan_a = DASPMatrix.from_csr(csr_a)
    reg = PlanRegistry(plan_nbytes(plan_a) + 16, store=store)
    reg.get_ex(csr_a, fingerprint=matrix_fingerprint(csr_a))
    reg.get_ex(csr_b, fingerprint=matrix_fingerprint(csr_b))
    # write-through already persisted both; the eviction spilled nothing
    assert reg.snapshot()["spills"] == 0


def test_oversized_plan_load_through_with_store(store):
    """With a disk tier, a plan over the whole RAM budget is persisted
    and served load-through instead of raising PlanTooLargeError."""
    reg = PlanRegistry(1, store=store)  # 1-byte budget: nothing fits
    csr = _mk_csr(6)
    fp = matrix_fingerprint(csr)
    plan, source, _ = reg.get_ex(csr, fingerprint=fp)
    assert source == "built"
    assert len(reg) == 0          # never occupies RAM budget
    assert fp in store            # but is durable
    assert reg.snapshot()["oversized"] == 1
    # subsequent lookups serve it from disk every time
    plan2, source, load_s = reg.get_ex(csr, fingerprint=fp)
    assert source == "store" and len(reg) == 0
    assert np.array_equal(plan2.csr.data, plan.csr.data)


def test_oversized_plan_still_raises_without_store():
    """Regression: the hard error is unchanged when no store is given."""
    reg = PlanRegistry(1)
    with pytest.raises(PlanTooLargeError):
        reg.get(_mk_csr(7))
    assert len(reg) == 0


def test_corrupt_artifact_falls_back_to_build(store):
    csr = _mk_csr(8)
    fp = matrix_fingerprint(csr)
    PlanRegistry(store=store).get_ex(csr, fingerprint=fp)
    # corrupt the published artifact in place
    path = store.path_for(fp)
    header, payload_start = read_header(path)
    rec = next(r for r in header["arrays"] if r["nbytes"])
    blob = bytearray(path.read_bytes())
    blob[payload_start + int(rec["offset"])] ^= 0xFF
    path.write_bytes(bytes(blob))

    reg = PlanRegistry(store=store)
    plan, source, _ = reg.get_ex(csr, fingerprint=fp)
    assert source == "built"  # quarantined, then rebuilt — never crashed
    assert np.array_equal(plan.csr.data, csr.data)
    snap = store.snapshot()
    assert snap["load_failures"] == 1 and snap["quarantined"] == 1
    # the rebuild re-published a good artifact over the quarantined one
    assert fp in store
    store.verify(fp)


def test_warm_bypasses_gate_and_misses_nothing(store, monkeypatch):
    csr = _mk_csr(9)
    fp = matrix_fingerprint(csr)
    assert PlanRegistry(store=store).warm(fp) is None  # nothing stored yet
    PlanRegistry(store=store).get_ex(csr, fingerprint=fp)

    # make the gate reject every load: warm() must load anyway
    import repro.store.store as store_mod

    monkeypatch.setattr(store_mod, "load_beats_rebuild",
                        lambda header, device: False)
    reg = PlanRegistry(store=store)
    load_s = reg.warm(fp)
    assert load_s is not None and load_s > 0
    assert reg.misses == 0  # preloads never count as cache misses
    _, source, _ = reg.get_ex(csr, fingerprint=fp)
    assert source == "ram"
    # but an in-band miss respects the gate and rebuilds
    reg2 = PlanRegistry(store=store)
    _, source, _ = reg2.get_ex(csr, fingerprint=fp)
    assert source == "built"
    assert reg2.store.snapshot()["load_skipped"] == 1


def test_modeled_load_beats_rebuild_on_suite(store):
    """The economics the tier is built on: for most representative
    matrices the modeled load is cheaper than the modeled rebuild (a
    marginal loser here and there is fine — that is what the gate is
    for — but if loads mostly lose, warm starts are pointless)."""
    from repro.matrices import synthetic_collection

    wins = 0
    entries = synthetic_collection(10)
    for e in entries:
        csr = e.matrix()
        fp = matrix_fingerprint(csr)
        store.put(fp, DASPMatrix.from_csr(csr))
        header, _ = read_header(store.path_for(fp))
        load = modeled_load_time(header)
        rebuild = modeled_rebuild_time(header)
        # the gate is exactly the comparison, never out of sync with it
        assert load_beats_rebuild(header) == (load < rebuild)
        wins += load < rebuild
    assert wins >= 0.8 * len(entries), \
        f"loads won only {wins}/{len(entries)}"


# ----------------------------------------------------------------------
# SpMVServer warm start
# ----------------------------------------------------------------------
def _serve_one(server, csr, x):
    fp = server.register(csr)
    y = server.submit(fp, x).result(timeout=10)
    return fp, y


def test_server_warm_start_roundtrip(tmp_path):
    csrs = [_mk_csr(20 + i, profile=p)
            for i, p in enumerate(("short", "medium", "mixed"))]
    xs = [np.random.default_rng(40 + i).uniform(-1, 1, c.shape[1])
          for i, c in enumerate(csrs)]
    store_dir = tmp_path / "store"

    with SpMVServer(workers=1, store=store_dir) as s1:
        cold = [_serve_one(s1, c, x)[1] for c, x in zip(csrs, xs)]
        assert s1.stats.store_writes == len(csrs)
        assert s1.stats.preprocess_s > 0

    with SpMVServer(workers=1, store=store_dir, warm_start=True) as s2:
        warm = [_serve_one(s2, c, x)[1] for c, x in zip(csrs, xs)]
        # every plan came off disk at register() time: no build ran,
        # and serving saw pure RAM hits
        assert s2.stats.store_loads == len(csrs)
        assert s2.registry.misses == 0
        assert s2.stats.store_load_modeled_s > 0
    for y_cold, y_warm in zip(cold, warm):
        assert np.array_equal(y_cold, y_warm)  # bitwise, not just close


def test_server_survives_corrupt_artifact(tmp_path):
    csr = _mk_csr(30)
    x = np.random.default_rng(0).uniform(-1, 1, csr.shape[1])
    store_dir = tmp_path / "store"
    with SpMVServer(workers=1, store=store_dir) as s1:
        fp, y_ref = _serve_one(s1, csr, x)
    # corrupt the artifact between runs
    store = PlanStore(store_dir)
    path = store.path_for(fp)
    header, payload_start = read_header(path)
    rec = next(r for r in header["arrays"] if r["nbytes"])
    blob = bytearray(path.read_bytes())
    blob[payload_start + int(rec["offset"])] ^= 0xFF
    path.write_bytes(bytes(blob))

    with SpMVServer(workers=1, store=store_dir, warm_start=True) as s2:
        fp2, y = _serve_one(s2, csr, x)
        assert fp2 == fp
        assert s2.stats.store_quarantined == 1
        assert s2.stats.n_failed == 0 and s2.stats.degraded_requests == 0
    assert np.array_equal(y, y_ref)  # rebuilt plan, identical numbers
    # quarantine holds the bad file + reason; plans/ was re-published
    assert (store_dir / "quarantine" / f"{fp}.daspz").exists()


def test_server_sharded_warm_start(tmp_path):
    csr = _mk_csr(31, m=128, profile="mixed")
    x = np.random.default_rng(1).uniform(-1, 1, csr.shape[1])
    store_dir = tmp_path / "store"
    with SpMVServer(workers=2, shards=2, store=store_dir) as s1:
        _, y_ref = _serve_one(s1, csr, x)
    with SpMVServer(workers=2, shards=2, store=store_dir,
                    warm_start=True) as s2:
        _, y = _serve_one(s2, csr, x)
        assert s2.stats.store_loads == 1
        plan = s2.registry.peek(matrix_fingerprint(csr))
        assert plan is not None and plan.n_shards == 2
    assert np.array_equal(y, y_ref)


# ----------------------------------------------------------------------
# virtual-time driver
# ----------------------------------------------------------------------
def test_driver_warm_start_same_numbers_less_preprocess(tmp_path):
    cfg = WorkloadConfig(n_requests=300, n_matrices=3, seed=11,
                        store=tmp_path / "store")
    cold = run_workload(cfg)
    assert cold.store_writes == 3 and cold.store_loads == 0
    warm = run_workload(WorkloadConfig(n_requests=300, n_matrices=3, seed=11,
                                       store=tmp_path / "store",
                                       warm_start=True))
    assert warm.store_loads == 3 and warm.store_writes == 0
    # identical traffic, identical modeled kernel time...
    assert warm.n_completed == cold.n_completed
    assert warm.device_busy_s == pytest.approx(cold.device_busy_s)
    # ...but the warm run replaced every rebuild with a cheaper load
    assert warm.preprocess_s < cold.preprocess_s
    assert warm.store_load_modeled_s == pytest.approx(warm.preprocess_s)


def test_driver_store_attribution_coverage(tmp_path):
    obs = Obs(tracer=Tracer(clock=lambda: 0.0))
    cfg = WorkloadConfig(n_requests=300, n_matrices=3, seed=11,
                         store=tmp_path / "store")
    run_workload(cfg)  # populate the store
    stats = run_workload(
        WorkloadConfig(n_requests=300, n_matrices=3, seed=11,
                       store=tmp_path / "store", warm_start=True), obs=obs)
    total = stats.device_busy_s + stats.preprocess_s
    att = obs.tracer.attribution(total)
    assert att["coverage"] >= 0.95
    assert att["phases"]["plan.load"] == pytest.approx(
        stats.store_load_modeled_s)


def test_stats_summary_mentions_store(tmp_path):
    cfg = WorkloadConfig(n_requests=200, n_matrices=2, seed=3,
                         store=tmp_path / "store")
    table = run_workload(cfg).summary_table()
    assert "store load / write / spill" in table
    # store-less runs keep the old table shape byte-for-byte
    assert "store" not in run_workload(
        WorkloadConfig(n_requests=200, n_matrices=2, seed=3)).summary_table()
