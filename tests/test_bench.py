"""Tests for the benchmark harness (runner + reporting)."""

import numpy as np
import pytest

from repro.bench import markdown_table, paper_vs_measured, run_comparison, save_csv
from repro.matrices import synthetic_collection
from repro.matrices.collection import CollectionEntry
from tests.conftest import random_csr


def tiny_entries(rng, n=3):
    out = []
    for i in range(n):
        seed = int(rng.integers(1 << 30))
        out.append(CollectionEntry(
            f"t{i}", "test",
            (lambda s=seed: random_csr(60, 80, np.random.default_rng(s)))))
    return out


class TestRunComparison:
    def test_all_methods_measured(self, rng):
        res = run_comparison(tiny_entries(rng), device="A100")
        assert set(res.times) == {"CSR5", "TileSpMV", "LSRB-CSR",
                                  "cuSPARSE-BSR", "cuSPARSE-CSR", "DASP"}
        for per_matrix in res.times.values():
            assert len(per_matrix) == 3
            assert all(t > 0 for t in per_matrix.values())

    def test_correctness_checked(self, rng):
        res = run_comparison(tiny_entries(rng), device="A100",
                             check_correctness=True)
        assert len(res.errors) == 3
        assert all(e < 1e-8 for e in res.errors.values())

    def test_fp16_filters_methods(self, rng):
        res = run_comparison(tiny_entries(rng), dtype=np.float16)
        # only DASP and cuSPARSE-CSR support FP16 (paper Table 1)
        assert set(res.times) == {"cuSPARSE-CSR", "DASP"}

    def test_keep_matrices(self, rng):
        res = run_comparison(tiny_entries(rng, 2), keep_matrices=True)
        assert len(res.matrices) == 2

    def test_gflops_accessor(self, rng):
        res = run_comparison(tiny_entries(rng, 2))
        g = res.gflops("DASP")
        assert len(g) == 2 and all(v > 0 for v in g.values())

    def test_preprocess_and_wall_recorded(self, rng):
        res = run_comparison(tiny_entries(rng, 2))
        assert all(v >= 0 for v in res.preprocess["DASP"].values())
        assert all(v > 0 for v in res.wall_prepare["DASP"].values())

    def test_custom_method_subset(self, rng):
        res = run_comparison(tiny_entries(rng, 1), methods=("DASP",))
        assert list(res.times) == ["DASP"]

    def test_deterministic(self, rng):
        e = tiny_entries(rng, 1)
        t1 = run_comparison(e, methods=("DASP",)).times["DASP"]["t0"]
        t2 = run_comparison(e, methods=("DASP",)).times["DASP"]["t0"]
        assert t1 == t2


class TestReport:
    def test_markdown_table(self):
        text = markdown_table(("a", "b"), [(1, 2.5), ("x", float("nan"))])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert "| 1 | 2.50 |" in text
        assert "| x | - |" in text

    def test_small_floats_sci(self):
        text = markdown_table(("v",), [(1.5e-7,)])
        assert "1.5e-07" in text

    def test_save_csv(self, tmp_path):
        path = save_csv(tmp_path / "sub" / "out.csv", ("a", "b"),
                        [(1, 2), (3, 4)])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b" and content[2] == "3,4"

    def test_paper_vs_measured(self):
        text = paper_vs_measured([("geomean vs CSR5", "1.46x", "1.57x", "yes")])
        assert "paper" in text and "1.46x" in text
