"""Tests for the shared packing helpers."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core._pack import exclusive_cumsum, gather_rows_padded
from tests.conftest import random_csr


class TestExclusiveCumsum:
    def test_basic(self):
        assert list(exclusive_cumsum(np.array([3, 0, 2]))) == [0, 3, 3, 5]

    def test_empty(self):
        assert list(exclusive_cumsum(np.zeros(0, dtype=np.int64))) == [0]


class TestGatherRowsPadded:
    def test_exact_lengths_no_padding(self, rng):
        csr = random_csr(10, 20, rng)
        lens = csr.row_lengths()
        rows = np.nonzero(lens)[0]
        val, cid, valid = gather_rows_padded(csr, rows, lens[rows])
        assert valid.all()
        # concatenation of the selected rows' data in order
        expected = np.concatenate([
            csr.data[csr.indptr[r]:csr.indptr[r + 1]] for r in rows])
        assert np.array_equal(val, expected)

    def test_padding_is_zero_with_cid_zero(self, rng):
        csr = random_csr(6, 20, rng)
        rows = np.arange(6)
        padded = csr.row_lengths()[rows] + 3
        val, cid, valid = gather_rows_padded(csr, rows, padded)
        assert np.all(val[~valid] == 0)
        assert np.all(cid[~valid] == 0)

    def test_row_order_respected(self, rng):
        csr = random_csr(8, 20, rng)
        lens = csr.row_lengths()
        rows = np.array([5, 1])
        if lens[5] and lens[1]:
            val, _, _ = gather_rows_padded(csr, rows, lens[rows])
            assert np.array_equal(val[:lens[5]],
                                  csr.data[csr.indptr[5]:csr.indptr[6]])

    def test_rejects_underpadding(self, rng):
        csr = random_csr(5, 20, rng)
        lens = csr.row_lengths()
        rows = np.nonzero(lens > 1)[0][:1]
        if rows.size:
            with pytest.raises(ValidationError):
                gather_rows_padded(csr, rows, lens[rows] - 1)

    def test_empty_selection(self, rng):
        csr = random_csr(5, 20, rng)
        val, cid, valid = gather_rows_padded(
            csr, np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert val.size == 0 and cid.size == 0 and valid.size == 0

    def test_mismatched_lengths_rejected(self, rng):
        csr = random_csr(5, 20, rng)
        with pytest.raises(ValidationError):
            gather_rows_padded(csr, np.array([0]), np.array([1, 2]))

    def test_dtype_preserved(self, rng):
        csr = random_csr(5, 20, rng, dtype=np.float16)
        rows = np.arange(5)
        val, _, _ = gather_rows_padded(csr, rows, csr.row_lengths() + 1)
        assert val.dtype == np.float16
