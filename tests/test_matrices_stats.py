"""Tests for row-length / structure statistics."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices import (
    blockiness,
    category_ratios,
    column_locality,
    gini_coefficient,
    row_length_stats,
    warp_imbalance,
)
from tests.conftest import random_csr


class TestRowLengthStats:
    def test_basic_fields(self, rng):
        csr = random_csr(50, 100, rng)
        s = row_length_stats(csr)
        lens = csr.row_lengths()
        assert s.rows == 50 and s.nnz == csr.nnz
        assert s.min_len == lens.min() and s.max_len == lens.max()
        assert s.mean_len == pytest.approx(lens.mean())
        assert s.empty_rows == np.count_nonzero(lens == 0)

    def test_empty_matrix(self):
        s = row_length_stats(CSRMatrix.empty((0, 5)))
        assert s.rows == 0 and s.nnz == 0

    def test_imbalance_hint(self, rng):
        csr = random_csr(50, 100, rng)
        s = row_length_stats(csr)
        assert s.imbalance_hint == pytest.approx(s.max_len / s.mean_len)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        v = np.zeros(1000)
        v[0] = 100.0
        assert gini_coefficient(v) > 0.99

    def test_empty(self):
        assert gini_coefficient(np.zeros(0)) == 0.0

    def test_bounds(self, rng):
        v = rng.pareto(1.5, 500)
        assert 0.0 <= gini_coefficient(v) <= 1.0


class TestCategoryRatios:
    def test_row_shares_sum_to_one(self, profiled_matrix):
        c = category_ratios(profiled_matrix)
        assert sum(c.row_shares().values()) == pytest.approx(1.0)

    def test_nnz_shares_sum_to_one(self, profiled_matrix):
        c = category_ratios(profiled_matrix)
        if profiled_matrix.nnz:
            assert sum(c.nnz_shares().values()) == pytest.approx(1.0)

    def test_boundaries(self, rng):
        csr = random_csr(10, 600, rng,
                         row_len_sampler=lambda r, m: np.array(
                             [0, 1, 4, 5, 256, 257, 300, 2, 3, 100]))
        c = category_ratios(csr)
        assert c.row_empty == pytest.approx(0.1)
        assert c.row_short == pytest.approx(0.4)
        assert c.row_medium == pytest.approx(0.3)
        assert c.row_long == pytest.approx(0.2)


class TestWarpImbalance:
    def test_uniform_is_one(self, rng):
        csr = random_csr(64, 500, rng,
                         row_len_sampler=lambda r, m: np.full(m, 7))
        assert warp_imbalance(csr) == pytest.approx(1.0)

    def test_skew_grows(self, rng):
        lens = np.full(64, 1, dtype=np.int64)
        lens[0] = 500
        csr = random_csr(64, 1000, rng, row_len_sampler=lambda r, m: lens)
        assert warp_imbalance(csr) > 5

    def test_empty(self):
        assert warp_imbalance(CSRMatrix.empty((3, 3))) == 1.0


class TestBlockiness:
    def test_dense_is_one(self, rng):
        d = rng.standard_normal((16, 16))
        assert blockiness(CSRMatrix.from_dense(d)) == pytest.approx(1.0)

    def test_scattered_is_zero(self, rng):
        csr = random_csr(64, 8192, rng,
                         row_len_sampler=lambda r, m: np.full(m, 2))
        assert blockiness(csr) < 0.05

    def test_empty(self):
        assert blockiness(CSRMatrix.empty((4, 4))) == 0.0


class TestColumnLocality:
    def test_contiguous_rows_high(self):
        d = np.zeros((8, 64))
        d[:, 10:20] = 1.0
        assert column_locality(CSRMatrix.from_dense(d)) == pytest.approx(1.0)

    def test_scattered_low(self, rng):
        csr = random_csr(32, 100000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 30))
        assert column_locality(csr) < 0.3

    def test_tiny_matrix(self):
        assert column_locality(CSRMatrix.empty((2, 2))) == 1.0
