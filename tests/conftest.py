"""Shared fixtures and matrix factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix


def random_csr(m, n, rng, *, row_len_sampler=None, dtype=np.float64,
               empty_frac=0.0) -> CSRMatrix:
    """Random CSR matrix with controllable row-length distribution.

    ``row_len_sampler(rng, m)`` returns per-row nonzero counts; defaults
    to uniform 0..min(20, n).  Duplicate columns are removed, so actual
    lengths can be slightly below the sampled ones.
    """
    if row_len_sampler is None:
        row_len_sampler = lambda r, rows: r.integers(0, min(20, n) + 1, rows)
    lens = np.asarray(row_len_sampler(rng, m), dtype=np.int64)
    lens = np.clip(lens, 0, n)
    if empty_frac:
        lens[rng.random(m) < empty_frac] = 0
    rows = np.repeat(np.arange(m, dtype=np.int64), lens)
    # distinct columns per row so sampled lengths are exact
    cols = np.concatenate([rng.choice(n, size=int(l), replace=False)
                           for l in lens if l]) if lens.sum() else         np.zeros(0, dtype=np.int64)
    vals = rng.uniform(0.1, 1.0, rows.size) * rng.choice([-1.0, 1.0], rows.size)
    return COOMatrix((m, n), rows, cols, vals.astype(dtype)).to_csr(
        sum_duplicates=False)


#: Named row-length profiles covering every DASP category mix.
ROW_PROFILES = {
    "empty_heavy": lambda r, m: np.where(r.random(m) < 0.5, 0,
                                         r.integers(1, 6, m)),
    "short": lambda r, m: r.integers(0, 5, m),
    "medium": lambda r, m: r.integers(5, 200, m),
    "long": lambda r, m: r.integers(257, 500, m),
    "mixed": lambda r, m: np.where(
        r.random(m) < 0.05, r.integers(257, 600, m), r.integers(0, 30, m)),
    "uniform": lambda r, m: r.integers(0, 24, m),
    "skewed": lambda r, m: (r.pareto(1.3, m) * 3 + 1).astype(np.int64),
}


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=sorted(ROW_PROFILES))
def profiled_matrix(request, rng):
    """One random matrix per row-length profile (parametrized fixture)."""
    profile = ROW_PROFILES[request.param]
    return random_csr(96, 700, rng, row_len_sampler=profile)


@pytest.fixture
def small_dense(rng):
    """A small dense array for round-trip tests."""
    d = rng.standard_normal((11, 17))
    d[rng.random((11, 17)) < 0.7] = 0.0
    return d
