"""Tests for report helpers not covered by test_bench.py."""

from pathlib import Path

from repro.bench import RESULTS_DIR, markdown_table, results_path


class TestResultsPath:
    def test_under_results_dir(self):
        p = results_path("unit_test_artifact.txt")
        assert p.parent == RESULTS_DIR
        assert RESULTS_DIR.exists()

    def test_writable(self):
        p = results_path("unit_test_artifact.txt")
        p.write_text("hello")
        assert p.read_text() == "hello"
        p.unlink()


class TestMarkdownFormatting:
    def test_integer_kept_verbatim(self):
        assert "| 12345 |" in markdown_table(("a",), [(12345,)])

    def test_large_float_compact(self):
        out = markdown_table(("a",), [(123456.789,)])
        assert "1.23e+05" in out

    def test_mixed_types_row(self):
        out = markdown_table(("a", "b", "c"), [(1, "x", 2.5)])
        assert "| 1 | x | 2.50 |" in out

    def test_empty_rows(self):
        out = markdown_table(("a", "b"), [])
        assert out.splitlines() == ["| a | b |", "|---|---|"]
