"""repro.core.delta — incremental plan maintenance for evolving sparsity.

The contract under test is *bitwise* equivalence: after any stream of
value and structural deltas, SpMV/SpMM on the patched plan must equal —
bit for bit, not approximately — the same kernels on a plan rebuilt
from scratch from the updated CSR.  That holds because a row's kernel
result is independent of which other rows it is packed with, so the
patch overlay's mini-plan reproduces exactly the arithmetic a full
rebuild would run for the dirty rows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_MAX_LEN,
    DASPMatrix,
    DeltaError,
    StructuralUpdate,
    ValueUpdate,
    apply_structural_to_csr,
    apply_structural_update,
    apply_update,
    apply_value_update,
    clone_for_patch,
    compact_plan,
    consolidate_plan,
    dasp_spmm_on_plan,
    dasp_spmv,
    delta_from_arrays,
    delta_to_arrays,
    random_delta,
    rebuild_debt,
    rebuild_events,
)
from repro.core.delta import has_overlay
from repro.formats import COOMatrix, CSRMatrix
from repro.shard import build_sharded_plan

from .conftest import ROW_PROFILES, random_csr


# ----------------------------------------------------------------------
# Reference evolution: mirror the CSR through a dense array.  Values
# are always drawn away from zero, so dense round-trips preserve the
# pattern exactly and CSR reconstruction is canonical (sorted indices).
# ----------------------------------------------------------------------
def to_dense(csr) -> np.ndarray:
    d = np.zeros(csr.shape, dtype=csr.data.dtype)
    for i in range(csr.shape[0]):
        sl = slice(csr.indptr[i], csr.indptr[i + 1])
        d[i, csr.indices[sl]] = csr.data[sl]
    return d


def from_dense(dense) -> CSRMatrix:
    rows, cols = np.nonzero(dense)
    return COOMatrix(dense.shape, rows.astype(np.int64),
                     cols.astype(np.int64),
                     dense[rows, cols]).to_csr(sum_duplicates=False)


def apply_to_dense(dense, delta) -> None:
    if isinstance(delta, ValueUpdate):
        for r, c, v in zip(delta.rows, delta.cols, delta.vals):
            dense[r, c] = v
    else:
        for r, c in zip(delta.delete_rows, delta.delete_cols):
            dense[r, c] = 0.0
        for r, c, v in zip(delta.insert_rows, delta.insert_cols,
                           delta.insert_vals):
            dense[r, c] = v


def assert_matches_rebuild(plan, csr, x, *, what=""):
    """Patched plan ≡ fresh build of the reference CSR, bit for bit."""
    fresh = DASPMatrix.from_csr(csr)
    assert np.array_equal(dasp_spmv(plan, x), dasp_spmv(fresh, x)), \
        f"spmv patched != rebuild {what}"
    X = np.stack([x, 2 * x, x - 1], axis=1)
    assert np.array_equal(dasp_spmm_on_plan_any(plan, X),
                          dasp_spmm_on_plan(fresh, X)), \
        f"spmm patched != rebuild {what}"


def dasp_spmm_on_plan_any(plan, X):
    if hasattr(plan, "shards"):
        return np.concatenate([dasp_spmm_on_plan(s.dasp, X)
                               for s in plan.shards], axis=0)
    return dasp_spmm_on_plan(plan, X)


def sharded_spmv(plan, x):
    return np.concatenate([dasp_spmv(s.dasp, x) for s in plan.shards])


@pytest.fixture
def matrix(rng):
    return random_csr(80, 400, rng, row_len_sampler=ROW_PROFILES["mixed"])


# ----------------------------------------------------------------------
# Typed delta API
# ----------------------------------------------------------------------
class TestDeltaTypes:
    def test_value_update_coerces_and_counts(self):
        d = ValueUpdate(rows=[1, 2, 1], cols=[0, 3, 5], vals=[1.0, 2.0, 3.0])
        assert d.rows.dtype == np.int64 and d.n_entries == 3
        assert d.touched_rows().tolist() == [1, 2]

    def test_mismatched_triples_rejected(self):
        from repro._util import ValidationError

        with pytest.raises(ValidationError):
            ValueUpdate(rows=[1], cols=[2, 3], vals=[1.0])
        with pytest.raises(ValidationError):
            StructuralUpdate(insert_rows=[1], insert_cols=[2],
                             insert_vals=[1.0, 2.0])

    def test_roundtrip_arrays(self, matrix, rng):
        for structural in (False, True):
            d = random_delta(matrix, rng, structural=structural, n_entries=7)
            d2 = delta_from_arrays(delta_to_arrays(d))
            assert type(d2) is type(d)
            assert np.array_equal(d2.touched_rows(), d.touched_rows())

    def test_value_update_unknown_position_raises(self, matrix):
        # column n-1 of an empty row cannot hold an entry
        lens = matrix.row_lengths()
        empty = int(np.flatnonzero(lens == 0)[0])
        plan = DASPMatrix.from_csr(matrix)
        with pytest.raises(DeltaError):
            apply_value_update(plan, ValueUpdate(
                rows=[empty], cols=[matrix.shape[1] - 1], vals=[1.0]))

    def test_delete_unknown_position_raises(self, matrix):
        lens = matrix.row_lengths()
        empty = int(np.flatnonzero(lens == 0)[0])
        with pytest.raises(DeltaError):
            apply_structural_to_csr(matrix, StructuralUpdate(
                delete_rows=[empty], delete_cols=[0]))


# ----------------------------------------------------------------------
# Value updates — in-place slab patching
# ----------------------------------------------------------------------
class TestValueUpdates:
    @pytest.mark.parametrize("profile", ["short", "medium", "long", "mixed",
                                         "empty_heavy"])
    def test_patched_equals_rebuild(self, profile, rng):
        csr = random_csr(64, 400, rng, row_len_sampler=ROW_PROFILES[profile])
        if csr.nnz == 0:
            pytest.skip("profile drew an all-empty matrix")
        dense = to_dense(csr)
        plan = DASPMatrix.from_csr(csr)
        x = rng.standard_normal(csr.shape[1])
        for _ in range(4):
            d = random_delta(csr, rng, n_entries=9)
            apply_value_update(plan, d)
            apply_to_dense(dense, d)
            csr = from_dense(dense)
            assert_matches_rebuild(plan, csr, x, what=f"(profile={profile})")

    def test_duplicate_entries_last_wins(self, matrix, rng):
        plan = DASPMatrix.from_csr(matrix)
        r, c = int(matrix.indices[0] * 0), int(matrix.indices[0])
        # entry (0-th stored nonzero): row of index 0
        row = int(np.searchsorted(matrix.indptr, 1, side="left")) - 1
        row = max(row, 0)
        d = ValueUpdate(rows=[row, row], cols=[c, c], vals=[5.0, -7.0])
        apply_value_update(plan, d)
        y = dasp_spmv(plan, np.eye(matrix.shape[1])[c])
        assert y[row] == np.float64(-7.0)

    def test_empty_delta_is_noop(self, matrix):
        plan = DASPMatrix.from_csr(matrix)
        info = apply_value_update(plan, ValueUpdate(
            rows=np.zeros(0, np.int64), cols=np.zeros(0, np.int64),
            vals=np.zeros(0)))
        assert info.touched_rows == 0 and info.nnz_touched == 0

    def test_clone_isolates_drained_version(self, matrix, rng):
        plan = DASPMatrix.from_csr(matrix)
        x = rng.standard_normal(matrix.shape[1])
        y_before = dasp_spmv(plan, x)
        work = clone_for_patch(plan)
        apply_value_update(work, random_delta(matrix, rng, n_entries=20))
        assert np.array_equal(dasp_spmv(plan, x), y_before), \
            "patching a clone mutated the original plan"
        assert not np.array_equal(dasp_spmv(work, x), y_before)

    def test_patch_cheaper_than_rebuild(self, matrix, rng):
        from repro.gpu.cost_model import estimate_preprocess_time

        plan = DASPMatrix.from_csr(matrix)
        info = apply_value_update(plan, random_delta(matrix, rng, n_entries=8))
        patch_s = info.seconds("A100")
        rebuild_s = estimate_preprocess_time(rebuild_events(plan), "A100")
        assert patch_s < rebuild_s / 3


# ----------------------------------------------------------------------
# Structural updates — overlay reclassification
# ----------------------------------------------------------------------
class TestStructuralUpdates:
    def test_insert_delete_equals_rebuild(self, matrix, rng):
        dense = to_dense(matrix)
        plan = DASPMatrix.from_csr(matrix)
        x = rng.standard_normal(matrix.shape[1])
        csr = matrix
        for i in range(5):
            d = random_delta(csr, rng, structural=True, n_entries=8)
            plan, info = apply_structural_update(plan, d, auto_compact=False)
            apply_to_dense(dense, d)
            csr = from_dense(dense)
            assert info.kind == "structural"
            assert_matches_rebuild(plan, csr, x, what=f"(step {i})")

    def test_row_emptied_and_refilled(self, rng):
        # one row with a single entry: delete empties it, insert refills
        csr = random_csr(8, 32, rng,
                         row_len_sampler=lambda r, m: np.full(m, 1))
        dense = to_dense(csr)
        plan = DASPMatrix.from_csr(csr)
        x = rng.standard_normal(32)
        row = 3
        col = int(csr.indices[csr.indptr[row]])
        d = StructuralUpdate(delete_rows=[row], delete_cols=[col])
        plan, _ = apply_structural_update(plan, d, auto_compact=False)
        apply_to_dense(dense, d)
        assert dasp_spmv(plan, x)[row] == 0.0
        assert_matches_rebuild(plan, from_dense(dense), x, what="(emptied)")
        d = StructuralUpdate(insert_rows=[row, row], insert_cols=[5, 9],
                             insert_vals=[2.5, -1.5])
        plan, _ = apply_structural_update(plan, d, auto_compact=False)
        apply_to_dense(dense, d)
        assert_matches_rebuild(plan, from_dense(dense), x, what="(refilled)")

    def test_category_migrations_counted(self, rng):
        # row 0: exactly SHORT_LEN entries -> +1 insert crosses into medium;
        # row 1: max_len entries -> +1 insert crosses into long.
        n = 600
        lens = np.zeros(16, dtype=np.int64)
        lens[0], lens[1] = 4, DEFAULT_MAX_LEN
        csr = random_csr(16, n, rng, row_len_sampler=lambda r, m: lens)
        plan = DASPMatrix.from_csr(csr)
        x = rng.standard_normal(n)
        dense = to_dense(csr)
        free0 = int(np.setdiff1d(np.arange(n), csr.indices[
            csr.indptr[0]:csr.indptr[1]])[0])
        free1 = int(np.setdiff1d(np.arange(n), csr.indices[
            csr.indptr[1]:csr.indptr[2]])[0])
        d = StructuralUpdate(insert_rows=[0, 1], insert_cols=[free0, free1],
                             insert_vals=[1.25, -2.5])
        plan, info = apply_structural_update(plan, d, auto_compact=False)
        assert info.migrations == 2
        apply_to_dense(dense, d)
        assert_matches_rebuild(plan, from_dense(dense), x, what="(migration)")

    def test_upsert_existing_position(self, matrix, rng):
        dense = to_dense(matrix)
        plan = DASPMatrix.from_csr(matrix)
        x = rng.standard_normal(matrix.shape[1])
        row = int(np.flatnonzero(matrix.row_lengths() > 0)[0])
        col = int(matrix.indices[matrix.indptr[row]])
        d = StructuralUpdate(insert_rows=[row], insert_cols=[col],
                             insert_vals=[9.75])
        plan, _ = apply_structural_update(plan, d, auto_compact=False)
        apply_to_dense(dense, d)
        csr = from_dense(dense)
        assert csr.nnz == matrix.nnz  # upsert did not grow the pattern
        assert_matches_rebuild(plan, csr, x, what="(upsert)")

    def test_value_update_after_structural(self, matrix, rng):
        """Value patches keep working on a plan carrying an overlay —
        clean rows patch slabs, dirty rows rebuild their mini."""
        dense = to_dense(matrix)
        plan = DASPMatrix.from_csr(matrix)
        x = rng.standard_normal(matrix.shape[1])
        csr = matrix
        d = random_delta(csr, rng, structural=True, n_entries=10)
        plan, _ = apply_structural_update(plan, d, auto_compact=False)
        apply_to_dense(dense, d)
        csr = from_dense(dense)
        for _ in range(3):
            d = random_delta(csr, rng, n_entries=12)
            apply_value_update(plan, d)
            apply_to_dense(dense, d)
            csr = from_dense(dense)
            assert_matches_rebuild(plan, csr, x, what="(value-on-overlay)")


# ----------------------------------------------------------------------
# Rebuild debt and compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_debt_grows_then_compaction_resets(self, matrix, rng):
        plan = DASPMatrix.from_csr(matrix)
        assert rebuild_debt(plan) == 0.0
        csr = matrix
        debts = []
        for _ in range(6):
            d = random_delta(csr, rng, structural=True, n_entries=10)
            plan, _ = apply_structural_update(plan, d, auto_compact=False)
            csr = plan.csr
            debts.append(rebuild_debt(plan))
        assert debts[-1] > 0.0
        assert debts == sorted(debts) or max(debts) > 0  # non-trivial debt
        fresh, info = compact_plan(plan)
        assert info.kind == "compaction" and info.compacted
        assert rebuild_debt(fresh) == 0.0 and not has_overlay(fresh)
        x = rng.standard_normal(matrix.shape[1])
        assert np.array_equal(dasp_spmv(fresh, x), dasp_spmv(plan, x))

    def test_auto_compact_bounds_debt(self, matrix, rng):
        threshold = 0.10
        plan = DASPMatrix.from_csr(matrix)
        csr = matrix
        compactions = 0
        for _ in range(25):
            d = random_delta(csr, rng, structural=True, n_entries=12)
            plan, info = apply_update(plan, d, compact_threshold=threshold)
            csr = plan.csr
            compactions += bool(info.compacted)
            assert rebuild_debt(plan) <= threshold or info.compacted
        assert compactions >= 1, "auto-compaction never triggered"
        # debt after every step stays bounded by the trigger + one delta
        assert rebuild_debt(plan) <= threshold + 0.1

    def test_consolidate_noop_without_overlay(self, matrix):
        plan = DASPMatrix.from_csr(matrix)
        assert consolidate_plan(plan) is plan

    def test_consolidate_clears_overlay_same_bits(self, matrix, rng):
        plan = DASPMatrix.from_csr(matrix)
        d = random_delta(matrix, rng, structural=True, n_entries=10)
        plan, _ = apply_structural_update(plan, d, auto_compact=False)
        assert has_overlay(plan)
        x = rng.standard_normal(matrix.shape[1])
        flat = consolidate_plan(plan)
        assert not has_overlay(flat)
        assert np.array_equal(dasp_spmv(flat, x), dasp_spmv(plan, x))


# ----------------------------------------------------------------------
# Sharded plans — per-band patching
# ----------------------------------------------------------------------
class TestShardedDelta:
    def test_mixed_stream_equals_rebuild(self, rng):
        csr = random_csr(120, 500, rng,
                         row_len_sampler=ROW_PROFILES["skewed"])
        dense = to_dense(csr)
        plan = build_sharded_plan(csr, 3)
        x = rng.standard_normal(500)
        for i in range(8):
            structural = i % 2 == 1
            d = random_delta(csr, rng, structural=structural, n_entries=10)
            plan, info = apply_update(plan, d, auto_compact=False)
            apply_to_dense(dense, d)
            csr = from_dense(dense)
            ref = build_sharded_plan(csr, 3)
            assert np.array_equal(sharded_spmv(plan, x),
                                  sharded_spmv(ref, x)), f"sharded step {i}"
        # the top-level CSR stays in sync for fingerprints/fallback
        assert np.array_equal(plan.csr.data,
                              from_dense(dense).data)

    def test_per_band_compaction(self, rng):
        csr = random_csr(90, 300, rng)
        plan = build_sharded_plan(csr, 3)
        # hammer only the first band's rows
        band_rows = np.arange(plan.row_starts[0], plan.row_starts[1])
        for _ in range(20):
            sub = csr.row_slice(band_rows)
            d0 = random_delta(sub, rng, structural=True, n_entries=8)
            d = StructuralUpdate(
                insert_rows=d0.insert_rows + plan.row_starts[0],
                insert_cols=d0.insert_cols, insert_vals=d0.insert_vals,
                delete_rows=d0.delete_rows + plan.row_starts[0],
                delete_cols=d0.delete_cols)
            plan, info = apply_update(plan, d, compact_threshold=0.15)
            csr = plan.csr
        assert rebuild_debt(plan) <= 0.3
        # untouched bands never compacted: their plans carry no overlay
        assert not has_overlay(plan.shards[2].dasp)


# ----------------------------------------------------------------------
# Property test: random delta streams, patched ≡ rebuild at every step
# ----------------------------------------------------------------------
@st.composite
def delta_streams(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.lists(st.sampled_from(["value", "structural", "empty"]),
                          min_size=1, max_size=6))
    return seed, steps


@given(delta_streams())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_delta_stream_bitwise(stream):
    seed, steps = stream
    rng = np.random.default_rng(seed)
    csr = random_csr(40, 320, rng, row_len_sampler=ROW_PROFILES["mixed"])
    if csr.nnz == 0:
        return
    dense = to_dense(csr)
    plan = DASPMatrix.from_csr(csr)
    x = rng.standard_normal(320)
    for step in steps:
        if step == "empty":
            d = ValueUpdate(rows=np.zeros(0, np.int64),
                            cols=np.zeros(0, np.int64), vals=np.zeros(0))
        else:
            d = random_delta(csr, rng, structural=step == "structural",
                             n_entries=int(rng.integers(1, 14)))
        plan, _ = apply_update(plan, d, auto_compact=bool(rng.integers(2)))
        apply_to_dense(dense, d)
        csr = from_dense(dense)
        fresh = DASPMatrix.from_csr(csr)
        assert np.array_equal(dasp_spmv(plan, x), dasp_spmv(fresh, x))
