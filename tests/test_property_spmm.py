"""Property test: `dasp_spmm` equals column-wise `dasp_spmv` stacking.

The SpMM extension must be *exactly* a batch of SpMVs on the same plan:
for every random rectangular matrix, every batch width (including the
k = 1 column-vector edge case and widths crossing the MMA_N = 8
boundary) and both precisions, ``dasp_spmm(A, X)[:, j]`` must match
``dasp_spmv(A, X[:, j])``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DASPMatrix, dasp_spmm, dasp_spmv


@st.composite
def csr_and_block(draw, dtype):
    m = draw(st.integers(min_value=1, max_value=60))
    n = draw(st.integers(min_value=1, max_value=80))
    k = draw(st.sampled_from([1, 3, 8, 13]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(min_value=0.02, max_value=0.6))
    dense = rng.uniform(-1, 1, (m, n))
    dense[rng.random((m, n)) >= density] = 0.0
    from repro.formats import CSRMatrix

    csr = CSRMatrix.from_dense(dense.astype(dtype))
    X = rng.uniform(-1, 1, (n, k)).astype(dtype)
    return csr, X


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=csr_and_block(np.float64))
def test_spmm_stacks_spmv_fp64(data):
    csr, X = data
    dasp = DASPMatrix.from_csr(csr)
    Y = dasp_spmm(dasp, X)
    cols = np.stack([dasp_spmv(dasp, X[:, j]) for j in range(X.shape[1])],
                    axis=1)
    np.testing.assert_allclose(Y, cols, rtol=1e-12, atol=1e-13)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=csr_and_block(np.float16))
def test_spmm_stacks_spmv_fp16(data):
    csr, X = data
    dasp = DASPMatrix.from_csr(csr)
    Y = dasp_spmm(dasp, X)
    assert Y.dtype == np.float32  # FP16 inputs accumulate in FP32
    cols = np.stack([dasp_spmv(dasp, X[:, j]) for j in range(X.shape[1])],
                    axis=1)
    np.testing.assert_allclose(Y, cols, rtol=2e-3, atol=2e-3)


class TestEngineValidation:
    """`dasp_spmm` engine/shape validation parity with `dasp_spmv`."""

    def test_unknown_engine_valueerror(self, rng):
        from tests.conftest import random_csr

        csr = random_csr(10, 20, rng)
        with pytest.raises(ValueError, match="unknown engine"):
            dasp_spmm(csr, np.zeros((20, 2)), engine="cuda")

    def test_warp_engine_matches_vectorized(self, rng):
        from tests.conftest import random_csr

        csr = random_csr(24, 40, rng)
        X = rng.uniform(-1, 1, (40, 3))
        Yw = dasp_spmm(csr, X, engine="warp")
        Yv = dasp_spmm(csr, X, engine="vectorized")
        np.testing.assert_allclose(Yw, Yv, rtol=1e-12)

    def test_k1_column_vector(self, rng):
        from tests.conftest import random_csr

        csr = random_csr(12, 18, rng)
        x = rng.uniform(-1, 1, 18)
        Y = dasp_spmm(csr, x[:, None])
        assert Y.shape == (12, 1)
        np.testing.assert_allclose(Y[:, 0], dasp_spmv(csr, x), rtol=1e-12)

    def test_zero_columns_rejected(self, rng):
        from repro._util import ValidationError
        from tests.conftest import random_csr

        csr = random_csr(10, 20, rng)
        with pytest.raises(ValidationError):
            dasp_spmm(csr, np.zeros((20, 0)))

    def test_warp_engine_cast_output(self, rng):
        from tests.conftest import random_csr

        csr = random_csr(8, 16, rng, dtype=np.float16)
        X = rng.uniform(-1, 1, (16, 2)).astype(np.float16)
        Y = dasp_spmm(csr, X, engine="warp", cast_output=True)
        assert Y.dtype == np.float16
