"""Tests for DASP row classification (Section 3.2)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import classify_rows
from repro.formats import CSRMatrix
from tests.conftest import random_csr


def csr_with_lengths(lengths, n=1000):
    lengths = np.asarray(lengths, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    nnz = int(indptr[-1])
    rng = np.random.default_rng(0)
    # distinct columns within each row
    indices = np.concatenate([
        np.sort(rng.choice(n, size=l, replace=False)) for l in lengths if l
    ]) if nnz else np.zeros(0, np.int64)
    return CSRMatrix((lengths.size, n), indptr, indices, np.ones(nnz))


class TestBoundaries:
    def test_short_boundary_inclusive(self):
        cls = classify_rows(csr_with_lengths([4]))
        assert cls.n_short == 1 and cls.n_medium == 0

    def test_medium_starts_at_five(self):
        cls = classify_rows(csr_with_lengths([5]))
        assert cls.n_medium == 1 and cls.n_short == 0

    def test_medium_boundary_inclusive(self):
        cls = classify_rows(csr_with_lengths([256]))
        assert cls.n_medium == 1 and cls.n_long == 0

    def test_long_starts_past_max_len(self):
        cls = classify_rows(csr_with_lengths([257]))
        assert cls.n_long == 1

    def test_empty_rows_tracked(self):
        cls = classify_rows(csr_with_lengths([0, 3, 0]))
        assert cls.n_empty == 2 and cls.n_short == 1

    def test_custom_max_len(self):
        cls = classify_rows(csr_with_lengths([100]), max_len=64)
        assert cls.n_long == 1

    def test_max_len_must_exceed_short(self):
        with pytest.raises(ValidationError):
            classify_rows(csr_with_lengths([1]), max_len=4)


class TestPartition:
    def test_every_row_exactly_once(self, profiled_matrix):
        cls = classify_rows(profiled_matrix)
        all_rows = np.concatenate([cls.long, cls.medium, cls.empty]
                                  + [cls.short[k] for k in (1, 2, 3, 4)])
        assert np.array_equal(np.sort(all_rows),
                              np.arange(profiled_matrix.shape[0]))

    def test_counts_match(self, profiled_matrix):
        cls = classify_rows(profiled_matrix)
        counts = cls.counts()
        assert sum(counts.values()) == profiled_matrix.shape[0]

    def test_short_buckets_exact(self):
        cls = classify_rows(csr_with_lengths([1, 2, 3, 4, 2, 1]))
        assert list(cls.short[1]) == [0, 5]
        assert list(cls.short[2]) == [1, 4]
        assert list(cls.short[3]) == [2]
        assert list(cls.short[4]) == [3]


class TestMediumOrdering:
    def test_sorted_descending(self):
        cls = classify_rows(csr_with_lengths([10, 200, 50, 5]))
        lens = np.array([10, 200, 50, 5])
        assert list(lens[cls.medium]) == [200, 50, 10, 5]

    def test_stable_among_equal_lengths(self):
        cls = classify_rows(csr_with_lengths([7, 9, 7, 9, 7]))
        # equal lengths keep original row order
        assert list(cls.medium) == [1, 3, 0, 2, 4]

    def test_long_rows_keep_appearance_order(self):
        cls = classify_rows(csr_with_lengths([300, 5, 400, 280]))
        assert list(cls.long) == [0, 2, 3]


class TestEdgeCases:
    def test_all_empty_matrix(self):
        cls = classify_rows(CSRMatrix.empty((5, 5)))
        assert cls.n_empty == 5
        assert cls.n_long == cls.n_medium == cls.n_short == 0

    def test_zero_row_matrix(self):
        cls = classify_rows(CSRMatrix.empty((0, 5)))
        assert cls.counts() == {"long": 0, "medium": 0, "short": 0, "empty": 0}

    def test_random_matrix_consistency(self, rng):
        csr = random_csr(200, 600, rng)
        cls = classify_rows(csr)
        lens = csr.row_lengths()
        assert np.all(lens[cls.long] > 256)
        assert np.all((lens[cls.medium] > 4) & (lens[cls.medium] <= 256))
        for k in (1, 2, 3, 4):
            assert np.all(lens[cls.short[k]] == k)
        assert np.all(lens[cls.empty] == 0)
