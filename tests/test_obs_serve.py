"""Integration tests: repro.obs wired through the serving stack."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs import Obs, Tracer, export
from repro.resilience import FaultInjector, FaultPlan, FaultRule
from repro.serve import ServerStats, SpMVServer
from repro.serve.driver import WorkloadConfig, run_workload

from tests.conftest import random_csr

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "serve_trace.schema.json"


def small_cfg(**kw):
    base = dict(n_requests=120, n_matrices=2, seed=7, device="A100")
    base.update(kw)
    return WorkloadConfig(**base)


class TestStatsFacade:
    def test_stats_snapshot_matches_registry_counters(self):
        """ServerStats reads live from the registry — no copy-at-close drift."""
        stats = run_workload(small_cfg())
        reg = stats.obs.registry
        assert stats.n_requests == reg.counter("serve.requests_total").value
        assert stats.n_completed == reg.counter("serve.completed_total").value
        assert stats.n_batches == reg.counter("serve.batches_total").value
        assert stats.cache_hits == reg.counter("serve.plan_cache.hits_total").value
        assert stats.cache_misses == reg.counter("serve.plan_cache.misses_total").value
        assert stats.device_busy_s == pytest.approx(
            reg.counter("serve.device_busy_seconds_total").value
        )

    def test_server_and_stats_share_one_obs(self, rng):
        """Satellite 3: cache counters seen via ServerStats mid-run, not copied
        at close — mutating the registry after close can't diverge from stats."""
        obs = Obs()
        with SpMVServer(max_batch=2, flush_timeout_s=0.01, workers=1, obs=obs) as server:
            fp = server.register(random_csr(64, 64, rng))
            x = rng.standard_normal(64)
            server.submit(fp, x).result()
            server.submit(fp, x).result()
            # Live (pre-close) facade equality with the plan registry.
            assert server.stats.cache_misses == server.registry.misses
            assert server.stats.cache_hits == server.registry.hits
        assert server.stats.cache_misses == 1
        assert server.stats.cache_hits == 1
        # One more registry bump is immediately visible through the stats
        # facade: both read the same counter object.
        obs.counter("serve.plan_cache.hits_total").inc()
        assert server.stats.cache_hits == server.registry.hits == 2

    def test_legacy_mutation_idioms_still_work(self):
        stats = ServerStats()
        stats.n_requests += 3
        stats.n_requests = 1
        stats.device_busy_s += 0.5
        assert stats.n_requests == 1
        assert stats.device_busy_s == pytest.approx(0.5)
        assert stats.obs.registry.counter("serve.requests_total").value == 1


class TestServerTracing:
    def test_span_nesting_under_concurrent_submits(self, rng):
        obs = Obs(tracer=Tracer())
        with SpMVServer(max_batch=4, flush_timeout_s=0.01, workers=2, obs=obs) as server:
            fps = [server.register(random_csr(48 + 16 * i, 64, rng))
                   for i in range(3)]
            futs = [
                server.submit(fp, rng.standard_normal(64))
                for _ in range(4)
                for fp in fps
            ]
            for f in futs:
                assert np.all(np.isfinite(f.result()))
        roots = obs.tracer.traces()
        assert roots and all(r.name in ("batch", "preprocess") for r in roots)
        batches = [r for r in roots if r.name == "batch"]
        assert batches
        for b in batches:
            assert b.status == "ok"
            kid_names = {c.name for c in b.children}
            assert "kernel" in kid_names
            kernel = next(c for c in b.children if c.name == "kernel")
            phase_names = {g.name for g in kernel.children}
            # dasp_spmm also opens its own nested "spmm" span under kernel.
            assert {"regular_mma", "irregular_csr"} <= phase_names
            # KernelEvents feed span attrs.
            assert kernel.attrs["flops_mma"] > 0
            assert kernel.attrs["bytes_total"] > 0
            assert 0.0 < kernel.attrs["mem_efficiency"] <= 1.0

    def test_fallback_span_on_degrade(self, rng):
        plan = FaultPlan(rules=[FaultRule(kind="kernel_error")], seed=3)
        obs = Obs(tracer=Tracer())
        with SpMVServer(
            max_batch=2, flush_timeout_s=0.01, workers=1, breaker=None,
            fault_injector=FaultInjector(plan), obs=obs,
        ) as server:
            fp = server.register(random_csr(64, 64, rng))
            y = server.submit(fp, np.ones(64)).result()
        assert np.all(np.isfinite(y))
        names = [sp.name for sp in obs.tracer.walk()]
        assert "fallback" in names
        fb = next(sp for sp in obs.tracer.walk() if sp.name == "fallback")
        assert fb.attrs["cause"] == "KernelFault"
        assert fb.device_s > 0
        assert obs.registry.family_total("resilience.faults_total") >= 1


class TestDriverTracing:
    def test_attribution_coverage_plain(self):
        obs = Obs(tracer=Tracer())
        stats = run_workload(small_cfg(), obs=obs)
        total = stats.device_busy_s + stats.preprocess_s
        att = obs.tracer.attribution(total)
        assert att["coverage"] >= 0.95
        assert att["phases"]["regular_mma"] > 0
        assert att["phases"]["preprocess"] > 0

    def test_attribution_coverage_under_chaos(self):
        from repro.serve.driver import ChaosConfig
        from repro.resilience import RetryPolicy

        obs = Obs(tracer=Tracer())
        cfg = small_cfg(
            n_requests=200,
            chaos=ChaosConfig(fault_rate=0.3, kinds=("kernel_error",)),
            retry=RetryPolicy(max_retries=2),
        )
        stats = run_workload(cfg, obs=obs)
        total = stats.device_busy_s + stats.preprocess_s
        att = obs.tracer.attribution(total)
        assert att["coverage"] >= 0.95
        error_kernels = [
            sp for sp in obs.tracer.walk()
            if sp.name == "kernel" and sp.status == "error"
        ]
        if stats.retries:
            assert error_kernels
            assert all("fault" in sp.attrs for sp in error_kernels)

    def test_obs_disabled_run_is_byte_identical(self):
        plain = run_workload(small_cfg())
        traced_obs = Obs(tracer=Tracer())
        traced = run_workload(small_cfg(), obs=traced_obs)
        assert plain.summary_table() == traced.summary_table()


class TestJsonSchema:
    def test_trace_doc_validates_against_checked_in_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        obs = Obs(tracer=Tracer())
        stats = run_workload(small_cfg(), obs=obs)
        doc = export.to_json_doc(
            obs, device_total_s=stats.device_busy_s + stats.preprocess_s
        )
        schema = json.loads(SCHEMA_PATH.read_text())
        jsonschema.validate(doc, schema)
        # And the serialized form round-trips to the same document.
        assert json.loads(export.render_json(
            obs, device_total_s=stats.device_busy_s + stats.preprocess_s
        )) == doc
