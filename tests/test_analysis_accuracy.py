"""Tests for the cross-method accuracy analysis."""

import numpy as np
import pytest

from repro.analysis import (
    compare_method_accuracy,
    exact_spmv,
    summation_error_bound,
)
from tests.conftest import random_csr


class TestExactSpmv:
    def test_matches_float64_on_easy_input(self, rng):
        csr = random_csr(30, 40, rng)
        x = rng.standard_normal(40)
        assert np.allclose(exact_spmv(csr, x), csr.matvec(x), rtol=1e-12)

    def test_cancellation_resolved(self):
        """Sum 1e16 + 1 - 1e16: float64 sequential order matters; the
        extended-precision reference gets 1 exactly."""
        from repro.formats import CSRMatrix

        csr = CSRMatrix((1, 3), [0, 3], [0, 1, 2], [1e16, 1.0, -1e16])
        y = exact_spmv(csr, np.ones(3))
        assert y[0] == 1.0


class TestCompare:
    def test_all_methods_near_machine_eps(self, rng):
        csr = random_csr(80, 120, rng)
        x = rng.standard_normal(120)
        rows = compare_method_accuracy(csr, x)
        assert len(rows) == 6
        for r in rows:
            assert r.rel_l2 < 1e-13, r.method

    def test_fp16_methods_filtered(self, rng):
        csr = random_csr(20, 20, rng, dtype=np.float16)
        rows = compare_method_accuracy(csr, np.ones(20, dtype=np.float16))
        names = {r.method for r in rows}
        assert names == {"cuSPARSE-CSR", "DASP"}

    def test_dasp_no_worse_than_sequential(self, rng):
        """Blocked summation should not lose accuracy vs sequential CSR
        on long rows (it is pairwise-flavoured)."""
        csr = random_csr(8, 4000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 2000))
        x = rng.standard_normal(4000)
        rows = {r.method: r for r in compare_method_accuracy(csr, x)}
        assert rows["DASP"].rel_l2 <= 5 * rows["cuSPARSE-CSR"].rel_l2


class TestBound:
    def test_growth(self):
        assert summation_error_bound(1000) > summation_error_bound(10)

    def test_machine_eps_scale(self):
        assert summation_error_bound(0) == pytest.approx(2 ** -53)
