"""Tests for the medium-rows planner and kernel (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import classify_rows, loop_num_for
from repro.core.medium_rows import (
    build_medium_rows,
    medium_rows_events,
    run_medium_rows,
)
from repro.gpu import A100
from repro.gpu.mma import FP64_M8N8K4, MmaUnit
from tests.conftest import random_csr


@pytest.fixture
def medium_matrix(rng):
    return random_csr(90, 1200, rng,
                      row_len_sampler=lambda r, m: r.integers(5, 250, m))


def plan_for(csr, threshold=0.75):
    cls = classify_rows(csr)
    return build_medium_rows(csr, cls.medium, FP64_M8N8K4,
                             threshold=threshold), cls


class TestLoopNum:
    @pytest.mark.parametrize("rows,expected", [
        (0, 1), (59989, 1), (59990, 2), (399999, 2), (400000, 4), (10**7, 4)])
    def test_paper_rule(self, rows, expected):
        assert loop_num_for(rows) == expected


class TestBuild:
    def test_rowblock_count(self, medium_matrix):
        plan, cls = plan_for(medium_matrix)
        assert plan.n_rowblocks == -(-cls.n_medium // 8)

    def test_regular_elems_are_block_multiples(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        assert np.all(np.diff(plan.rowblock_ptr) % 32 == 0)

    def test_conservation_of_nonzeros(self, medium_matrix):
        """Every original nonzero lands exactly once in regular or
        irregular storage (regular also holds padding zeros)."""
        plan, cls = plan_for(medium_matrix)
        stored_real = np.count_nonzero(plan.reg_val) + plan.irreg_nnz
        # values are nonzero by construction in random_csr
        assert stored_real == plan.orig_nnz

    def test_threshold_one_means_full_chunks_only(self, rng):
        csr = random_csr(16, 500, rng,
                         row_len_sampler=lambda r, m: np.full(m, 10))
        plan, _ = plan_for(csr, threshold=1.0)
        # chunk occupancy must EXCEED 32 -> impossible -> no regular part
        assert plan.reg_nnz == 0
        assert plan.irreg_nnz == plan.orig_nnz

    def test_uniform_rows_mostly_regular(self, rng):
        csr = random_csr(32, 2000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 64))
        plan, _ = plan_for(csr)
        # identical lengths: chunks are 100% occupied up to len/4
        assert plan.irreg_nnz <= plan.orig_nnz * 0.05

    def test_sorted_descending_within_blocks(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        lens = medium_matrix.row_lengths()[plan.row_idx]
        assert np.all(np.diff(lens) <= 0)

    def test_irreg_ptr_consistent(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        assert int(plan.irreg_ptr[-1]) == plan.irreg_nnz
        assert plan.irreg_ptr.size == plan.n_rows + 1

    def test_empty_selection(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_medium_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert plan.n_rows == 0 and plan.n_blocks == 0

    def test_threshold_validated(self, medium_matrix):
        from repro._util import ValidationError

        cls = classify_rows(medium_matrix)
        with pytest.raises(ValidationError):
            build_medium_rows(medium_matrix, cls.medium, FP64_M8N8K4,
                              threshold=0.0)


class TestKernel:
    def test_matches_reference(self, medium_matrix, rng):
        plan, _ = plan_for(medium_matrix)
        x = rng.standard_normal(1200)
        y = run_medium_rows(plan, x)
        ref = medium_matrix.matvec(x)
        assert np.allclose(y, ref[plan.row_idx], rtol=1e-12)

    @pytest.mark.parametrize("threshold", [0.25, 0.5, 0.75, 0.9, 1.0])
    def test_any_threshold_correct(self, medium_matrix, rng, threshold):
        plan, _ = plan_for(medium_matrix, threshold=threshold)
        x = rng.standard_normal(1200)
        assert np.allclose(run_medium_rows(plan, x),
                           medium_matrix.matvec(x)[plan.row_idx], rtol=1e-12)

    def test_partial_last_rowblock(self, rng):
        """Medium-row count not divisible by 8 pads virtual empty rows."""
        csr = random_csr(11, 300, rng,
                         row_len_sampler=lambda r, m: r.integers(6, 40, m))
        plan, _ = plan_for(csr)
        x = rng.standard_normal(300)
        assert np.allclose(run_medium_rows(plan, x),
                           csr.matvec(x)[plan.row_idx], rtol=1e-12)

    def test_counts_mma_issues(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        unit = MmaUnit(FP64_M8N8K4)
        run_medium_rows(plan, np.zeros(1200), unit=unit)
        assert unit.issue_count == plan.n_blocks

    def test_empty_plan(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_medium_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert run_medium_rows(plan, np.zeros(10)).size == 0


class TestEvents:
    def test_bytes_cover_both_parts(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        ev = medium_rows_events(plan, A100, x_bytes=0.0)
        assert ev.bytes_val == (plan.reg_nnz + plan.irreg_nnz) * 8

    def test_irregular_on_cuda_cores(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        ev = medium_rows_events(plan, A100, x_bytes=0.0)
        assert ev.flops_cuda == 2.0 * plan.irreg_nnz
        assert ev.flops_mma == plan.n_blocks * 512

    def test_single_launch(self, medium_matrix):
        plan, _ = plan_for(medium_matrix)
        assert medium_rows_events(plan, A100, x_bytes=0).kernel_launches == 1

    def test_empty_no_launch(self, rng):
        csr = random_csr(5, 10, rng)
        plan = build_medium_rows(csr, np.zeros(0, np.int64), FP64_M8N8K4)
        assert medium_rows_events(plan, A100, x_bytes=0).kernel_launches == 0
