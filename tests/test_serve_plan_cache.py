"""Tests for the plan registry (fingerprinting, LRU, byte budget)."""

import threading
import time

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix
from repro.serve import (PlanRegistry, PlanTooLargeError, matrix_fingerprint,
                         plan_nbytes)
from tests.conftest import random_csr


class TestFingerprint:
    def test_deterministic(self, rng):
        csr = random_csr(30, 40, rng)
        assert matrix_fingerprint(csr) == matrix_fingerprint(csr)

    def test_value_sensitive(self, rng):
        csr = random_csr(30, 40, rng)
        other = csr.astype(np.float64)
        other.data[0] += 1.0
        assert matrix_fingerprint(csr) != matrix_fingerprint(other)

    def test_structure_sensitive(self, rng):
        a = random_csr(30, 40, rng)
        b = random_csr(30, 40, rng)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_dtype_sensitive(self, rng):
        csr = random_csr(20, 20, rng)
        assert matrix_fingerprint(csr) != matrix_fingerprint(
            csr.astype(np.float16))


class TestPlanNbytes:
    def test_positive_and_tracks_size(self, rng):
        small = DASPMatrix.from_csr(random_csr(20, 40, rng))
        big = DASPMatrix.from_csr(random_csr(400, 800, rng))
        assert 0 < plan_nbytes(small) < plan_nbytes(big)


class TestRegistry:
    def test_miss_then_hit(self, rng):
        csr = random_csr(30, 40, rng)
        reg = PlanRegistry()
        plan, hit = reg.get(csr)
        assert not hit and isinstance(plan, DASPMatrix)
        plan2, hit2 = reg.get(csr)
        assert hit2 and plan2 is plan
        assert (reg.hits, reg.misses) == (1, 1)

    def test_lru_eviction_under_budget(self, rng):
        mats = [random_csr(60, 120, rng) for _ in range(4)]
        plans = [DASPMatrix.from_csr(m) for m in mats]
        budget = plan_nbytes(plans[0]) + plan_nbytes(plans[1]) \
            + plan_nbytes(plans[2]) + plan_nbytes(plans[3])
        # budget for roughly two plans
        reg = PlanRegistry(budget // 2)
        for m in mats:
            reg.get(m)
        assert reg.evictions >= 1
        assert reg.bytes_cached <= reg.budget_bytes
        # the most recent matrix is still cached
        _, hit = reg.get(mats[-1])
        assert hit

    def test_lru_order(self, rng):
        a, b, c = (random_csr(50, 100, rng) for _ in range(3))
        pa = DASPMatrix.from_csr(a)
        reg = PlanRegistry(int(plan_nbytes(pa) * 2.5))
        reg.get(a)
        reg.get(b)
        reg.get(a)          # refresh a; b is now LRU
        reg.get(c)          # evicts b
        assert matrix_fingerprint(a) in reg
        assert matrix_fingerprint(b) not in reg

    def test_singleton_over_budget_rejected(self, rng):
        csr = random_csr(80, 200, rng)
        reg = PlanRegistry(1)  # nothing fits
        with pytest.raises(PlanTooLargeError):
            reg.get(csr)
        assert len(reg) == 0  # rejected, not cached

    def test_over_budget_does_not_evict_working_set(self, rng):
        small = random_csr(10, 20, rng)
        reg = PlanRegistry()
        plan, _ = reg.get(small)
        reg.budget_bytes = plan_nbytes(plan) + 1  # only `small` fits
        big = random_csr(200, 300, rng)
        with pytest.raises(PlanTooLargeError):
            reg.get(big)
        assert matrix_fingerprint(small) in reg  # survivors untouched

    def test_custom_builder(self, rng):
        csr = random_csr(30, 40, rng)
        reg = PlanRegistry()
        plan, _ = reg.get(csr, builder=lambda c: DASPMatrix.from_csr(
            c, max_len=64))
        assert plan.max_len == 64

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            PlanRegistry(-1)

    def test_snapshot_counters(self, rng):
        reg = PlanRegistry()
        csr = random_csr(20, 30, rng)
        reg.get(csr)
        reg.get(csr)
        snap = reg.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["plans"] == 1 and snap["bytes_cached"] > 0

    def test_thread_safety_smoke(self, rng):
        mats = [random_csr(40, 80, rng) for _ in range(6)]
        reg = PlanRegistry()
        errors = []

        def worker():
            try:
                for m in mats:
                    plan, _ = reg.get(m)
                    assert plan.shape == m.shape
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert reg.hits + reg.misses == 24


class TestSingleFlight:
    def test_concurrent_misses_build_once(self, rng):
        """Regression: the builder used to run outside any coordination,
        so N threads missing on the same cold fingerprint did N
        expensive preprocessing passes and the last writer won.  Now the
        first miss builds while the rest wait on the same entry."""
        csr = random_csr(50, 80, rng)
        reg = PlanRegistry()
        builds = []
        build_lock = threading.Lock()
        start = threading.Barrier(8)
        results = []

        def builder(c):
            with build_lock:
                builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return DASPMatrix.from_csr(c)

        def worker():
            start.wait(timeout=5.0)
            results.append(reg.get(csr, builder=builder))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1, f"builder ran {len(builds)} times"
        assert (reg.misses, reg.hits) == (1, 7)
        plans = {id(plan) for plan, _ in results}
        assert len(plans) == 1  # every caller got the same object
        hits = [hit for _, hit in results]
        assert hits.count(False) == 1 and hits.count(True) == 7

    def test_failed_build_hands_over_to_waiter(self, rng):
        """A failing builder must not wedge the waiters: one of them
        takes over the build instead of caching the failure."""
        csr = random_csr(50, 80, rng)
        reg = PlanRegistry()
        builds = []
        build_lock = threading.Lock()
        start = threading.Barrier(4)
        outcomes = []

        def builder(c):
            with build_lock:
                builds.append(None)
                first = len(builds) == 1
            time.sleep(0.05)
            if first:
                raise RuntimeError("injected build failure")
            return DASPMatrix.from_csr(c)

        def worker():
            start.wait(timeout=5.0)
            try:
                plan, _ = reg.get(csr, builder=builder)
                outcomes.append(plan)
            except RuntimeError:
                outcomes.append("failed")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 2  # failed build + exactly one retry
        assert outcomes.count("failed") == 1
        built = [o for o in outcomes if o != "failed"]
        assert len(built) == 3 and len({id(p) for p in built}) == 1


class TestShardedPlanNbytes:
    def test_composite_sums_shards(self, rng):
        from repro.shard import build_sharded_plan

        csr = random_csr(120, 90, rng)
        sharded = build_sharded_plan(csr, 3)
        total = plan_nbytes(sharded)
        assert total == sum(plan_nbytes(s.dasp) for s in sharded.shards)
        assert total > 0

    def test_registry_accounts_composite_bytes(self, rng):
        from repro.shard import build_sharded_plan

        csr = random_csr(120, 90, rng)
        reg = PlanRegistry()
        plan, hit = reg.get(csr, builder=lambda c: build_sharded_plan(c, 2))
        assert not hit and plan.n_shards == 2
        assert reg.snapshot()["bytes_cached"] == plan_nbytes(plan)
