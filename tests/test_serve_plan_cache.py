"""Tests for the plan registry (fingerprinting, LRU, byte budget)."""

import threading

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix
from repro.serve import (PlanRegistry, PlanTooLargeError, matrix_fingerprint,
                         plan_nbytes)
from tests.conftest import random_csr


class TestFingerprint:
    def test_deterministic(self, rng):
        csr = random_csr(30, 40, rng)
        assert matrix_fingerprint(csr) == matrix_fingerprint(csr)

    def test_value_sensitive(self, rng):
        csr = random_csr(30, 40, rng)
        other = csr.astype(np.float64)
        other.data[0] += 1.0
        assert matrix_fingerprint(csr) != matrix_fingerprint(other)

    def test_structure_sensitive(self, rng):
        a = random_csr(30, 40, rng)
        b = random_csr(30, 40, rng)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_dtype_sensitive(self, rng):
        csr = random_csr(20, 20, rng)
        assert matrix_fingerprint(csr) != matrix_fingerprint(
            csr.astype(np.float16))


class TestPlanNbytes:
    def test_positive_and_tracks_size(self, rng):
        small = DASPMatrix.from_csr(random_csr(20, 40, rng))
        big = DASPMatrix.from_csr(random_csr(400, 800, rng))
        assert 0 < plan_nbytes(small) < plan_nbytes(big)


class TestRegistry:
    def test_miss_then_hit(self, rng):
        csr = random_csr(30, 40, rng)
        reg = PlanRegistry()
        plan, hit = reg.get(csr)
        assert not hit and isinstance(plan, DASPMatrix)
        plan2, hit2 = reg.get(csr)
        assert hit2 and plan2 is plan
        assert (reg.hits, reg.misses) == (1, 1)

    def test_lru_eviction_under_budget(self, rng):
        mats = [random_csr(60, 120, rng) for _ in range(4)]
        plans = [DASPMatrix.from_csr(m) for m in mats]
        budget = plan_nbytes(plans[0]) + plan_nbytes(plans[1]) \
            + plan_nbytes(plans[2]) + plan_nbytes(plans[3])
        # budget for roughly two plans
        reg = PlanRegistry(budget // 2)
        for m in mats:
            reg.get(m)
        assert reg.evictions >= 1
        assert reg.bytes_cached <= reg.budget_bytes
        # the most recent matrix is still cached
        _, hit = reg.get(mats[-1])
        assert hit

    def test_lru_order(self, rng):
        a, b, c = (random_csr(50, 100, rng) for _ in range(3))
        pa = DASPMatrix.from_csr(a)
        reg = PlanRegistry(int(plan_nbytes(pa) * 2.5))
        reg.get(a)
        reg.get(b)
        reg.get(a)          # refresh a; b is now LRU
        reg.get(c)          # evicts b
        assert matrix_fingerprint(a) in reg
        assert matrix_fingerprint(b) not in reg

    def test_singleton_over_budget_rejected(self, rng):
        csr = random_csr(80, 200, rng)
        reg = PlanRegistry(1)  # nothing fits
        with pytest.raises(PlanTooLargeError):
            reg.get(csr)
        assert len(reg) == 0  # rejected, not cached

    def test_over_budget_does_not_evict_working_set(self, rng):
        small = random_csr(10, 20, rng)
        reg = PlanRegistry()
        plan, _ = reg.get(small)
        reg.budget_bytes = plan_nbytes(plan) + 1  # only `small` fits
        big = random_csr(200, 300, rng)
        with pytest.raises(PlanTooLargeError):
            reg.get(big)
        assert matrix_fingerprint(small) in reg  # survivors untouched

    def test_custom_builder(self, rng):
        csr = random_csr(30, 40, rng)
        reg = PlanRegistry()
        plan, _ = reg.get(csr, builder=lambda c: DASPMatrix.from_csr(
            c, max_len=64))
        assert plan.max_len == 64

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            PlanRegistry(-1)

    def test_snapshot_counters(self, rng):
        reg = PlanRegistry()
        csr = random_csr(20, 30, rng)
        reg.get(csr)
        reg.get(csr)
        snap = reg.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["plans"] == 1 and snap["bytes_cached"] > 0

    def test_thread_safety_smoke(self, rng):
        mats = [random_csr(40, 80, rng) for _ in range(6)]
        reg = PlanRegistry()
        errors = []

        def worker():
            try:
                for m in mats:
                    plan, _ = reg.get(m)
                    assert plan.shape == m.shape
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert reg.hits + reg.misses == 24
