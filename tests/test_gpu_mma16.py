"""Tests for the m16n8k8 FP16 fragment layout."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.gpu import (
    Warp,
    frag_a16_from_matrix,
    frag_b16_from_matrix,
    frag_c16_from_matrix,
    matrix_from_frag_a16,
    matrix_from_frag_b16,
    matrix_from_frag_c16,
    mma_m16n8k8,
)


class TestFragments:
    def test_a_roundtrip(self, rng):
        a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        assert np.array_equal(matrix_from_frag_a16(frag_a16_from_matrix(a)), a)

    def test_b_roundtrip(self, rng):
        b = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
        assert np.array_equal(matrix_from_frag_b16(frag_b16_from_matrix(b)), b)

    def test_c_roundtrip(self, rng):
        c = rng.standard_normal((16, 8)).astype(np.float32)
        assert np.array_equal(matrix_from_frag_c16(frag_c16_from_matrix(c)), c)

    def test_register_shapes(self, rng):
        a = np.zeros((16, 8), np.float16)
        b = np.zeros((8, 8), np.float16)
        c = np.zeros((16, 8), np.float32)
        assert frag_a16_from_matrix(a).shape == (32, 4)
        assert frag_b16_from_matrix(b).shape == (32, 2)
        assert frag_c16_from_matrix(c).shape == (32, 4)

    def test_lane_ownership_ptx_layout(self):
        """Lane 0 (group 0, tid 0) holds A[0,0], A[0,1], A[8,0], A[8,1]."""
        a = np.arange(128, dtype=np.float16).reshape(16, 8)
        frag = frag_a16_from_matrix(a)
        assert list(frag[0]) == [a[0, 0], a[0, 1], a[8, 0], a[8, 1]]
        # lane 5 = group 1, tid 1 -> rows {1, 9}, cols {2, 3}
        assert list(frag[5]) == [a[1, 2], a[1, 3], a[9, 2], a[9, 3]]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            frag_a16_from_matrix(np.zeros((8, 16)))
        with pytest.raises(ValidationError):
            frag_b16_from_matrix(np.zeros((8, 4)))
        with pytest.raises(ValidationError):
            frag_c16_from_matrix(np.zeros((8, 8)))


class TestMma:
    def test_matches_gemm_fp32_acc(self, rng):
        a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        b = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
        c = rng.standard_normal((16, 8)).astype(np.float32)
        w = Warp()
        d = mma_m16n8k8(w, frag_c16_from_matrix(c),
                        frag_a16_from_matrix(a), frag_b16_from_matrix(b))
        ref = a.astype(np.float32) @ b.astype(np.float32) + c
        assert np.allclose(matrix_from_frag_c16(d), ref, rtol=1e-6)
        assert w.mma_count == 1

    def test_inputs_rounded_to_fp16(self):
        a = np.full((16, 8), 1.0 + 2 ** -12)  # rounds to 1.0 in fp16
        b = np.zeros((8, 8))
        b[:, 0] = 1.0
        w = Warp()
        d = mma_m16n8k8(w, frag_c16_from_matrix(np.zeros((16, 8), np.float32)),
                        frag_a16_from_matrix(a), frag_b16_from_matrix(b))
        out = matrix_from_frag_c16(d)
        assert out[0, 0] == np.float32(8.0)

    def test_accumulator_no_fp16_overflow(self):
        a = np.full((16, 8), 100.0, dtype=np.float16)
        b = np.full((8, 8), 100.0, dtype=np.float16)
        w = Warp()
        d = mma_m16n8k8(w, frag_c16_from_matrix(np.zeros((16, 8), np.float32)),
                        frag_a16_from_matrix(a), frag_b16_from_matrix(b))
        out = matrix_from_frag_c16(d)
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(80000.0)

    def test_acc_shape_validated(self):
        w = Warp()
        with pytest.raises(ValidationError):
            mma_m16n8k8(w, np.zeros((32, 2)), np.zeros((32, 4)),
                        np.zeros((32, 2)))
