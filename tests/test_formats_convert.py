"""Tests for the to_csr / to_coo normalization funnel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._util import ReproError
from repro.formats import BSRMatrix, COOMatrix, CSRMatrix, ELLMatrix, to_coo, to_csr
from tests.conftest import random_csr


class TestToCSR:
    def test_csr_passthrough(self, rng):
        csr = random_csr(5, 5, rng)
        assert to_csr(csr) is csr

    def test_from_coo(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(to_csr(coo).to_dense(), small_dense)

    def test_from_bsr(self, rng):
        csr = random_csr(12, 12, rng)
        bsr = BSRMatrix.from_csr(csr, (4, 4))
        assert np.allclose(to_csr(bsr).to_dense(), csr.to_dense())

    def test_from_ell(self, rng):
        csr = random_csr(12, 12, rng)
        assert np.allclose(to_csr(ELLMatrix.from_csr(csr)).to_dense(),
                           csr.to_dense())

    def test_from_dense_ndarray(self, small_dense):
        assert np.array_equal(to_csr(small_dense).to_dense(), small_dense)

    def test_from_scipy(self):
        s = sp.random(10, 10, density=0.3, random_state=0)
        assert np.allclose(to_csr(s).to_dense(), s.toarray())

    def test_rejects_unknown(self):
        with pytest.raises(ReproError):
            to_csr("not a matrix")


class TestToCOO:
    def test_coo_passthrough(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert to_coo(coo) is coo

    def test_from_csr(self, rng):
        csr = random_csr(8, 8, rng)
        assert np.array_equal(to_coo(csr).to_dense(), csr.to_dense())
