"""Tests for the ELL format."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.formats import CSRMatrix, ELLMatrix
from tests.conftest import random_csr


class TestConversion:
    def test_roundtrip(self, rng):
        csr = random_csr(25, 30, rng)
        ell = ELLMatrix.from_csr(csr)
        assert np.allclose(ell.to_csr().to_dense(), csr.to_dense())

    def test_width_defaults_to_longest_row(self, rng):
        csr = random_csr(25, 30, rng)
        assert ELLMatrix.from_csr(csr).width == int(csr.row_lengths().max())

    def test_explicit_wider_width(self, rng):
        csr = random_csr(10, 10, rng)
        w = int(csr.row_lengths().max()) + 3
        assert ELLMatrix.from_csr(csr, width=w).width == w

    def test_rejects_too_narrow(self, rng):
        csr = random_csr(10, 10, rng)
        max_len = int(csr.row_lengths().max())
        if max_len:
            with pytest.raises(ValidationError):
                ELLMatrix.from_csr(csr, width=max_len - 1)

    def test_empty_matrix(self):
        ell = ELLMatrix.from_csr(CSRMatrix.empty((4, 4)))
        assert ell.width == 0 and ell.nnz == 0


class TestPadding:
    def test_padding_ratio_uniform_rows(self):
        d = np.triu(np.ones((4, 4)))[::-1]  # rows 1..4 long
        ell = ELLMatrix.from_csr(CSRMatrix.from_dense(d))
        assert ell.stored_values == 16
        assert ell.padding_ratio == pytest.approx(16 / 10)

    def test_padding_ratio_empty_is_inf(self):
        assert ELLMatrix.from_csr(CSRMatrix.empty((2, 2))).padding_ratio == float("inf")

    def test_padding_slots_marked(self, rng):
        csr = random_csr(10, 10, rng)
        ell = ELLMatrix.from_csr(csr)
        pad = ell.cols < 0
        assert np.all(ell.vals[pad] == 0)


class TestMatvec:
    def test_matches_reference(self, rng):
        csr = random_csr(40, 50, rng)
        x = rng.standard_normal(50)
        assert np.allclose(ELLMatrix.from_csr(csr).matvec(x), csr.matvec(x))

    def test_skewed_rows(self, rng):
        lens = np.zeros(20, dtype=np.int64)
        lens[0] = 15
        csr = random_csr(20, 20, rng, row_len_sampler=lambda r, m: lens)
        x = rng.standard_normal(20)
        assert np.allclose(ELLMatrix.from_csr(csr).matvec(x), csr.matvec(x))

    def test_padding_never_reads_x_effectively(self, rng):
        """Padded slots use column 0's x but multiply by zero value."""
        csr = random_csr(10, 10, rng)
        ell = ELLMatrix.from_csr(csr, width=int(csr.row_lengths().max()) + 2)
        x = rng.standard_normal(10)
        x[0] = 1e30  # would corrupt results if padding leaked
        assert np.allclose(ell.matvec(x), csr.matvec(x))
