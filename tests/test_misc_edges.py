"""Miscellaneous edge-case coverage across subsystems."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.baselines import CSR5Method
from repro.core import DASPMethod
from repro.formats import CSRMatrix, read_matrix_market
from repro.gpu import A100, DeviceSpec, H800
from tests.conftest import random_csr


class TestMmioRobustness:
    def test_comments_interleaved_with_entries(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% header comment\n"
                "2 2 2\n"
                "1 1 1.0\n"
                "% mid-data comment\n"
                "2 2 2.0\n")
        dense = read_matrix_market(text).to_dense()
        assert dense[0, 0] == 1.0 and dense[1, 1] == 2.0

    def test_blank_lines_skipped(self):
        text = ("%%MatrixMarket matrix coordinate real general\n\n"
                "1 1 1\n\n1 1 4.0\n\n")
        assert read_matrix_market(text).to_dense()[0, 0] == 4.0

    def test_scientific_notation_values(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "1 1 1\n1 1 -3.5e-12\n")
        assert read_matrix_market(text).val[0] == -3.5e-12


class TestMethodInterface:
    def test_measure_rejects_unsupported_dtype(self, rng):
        csr = random_csr(10, 10, rng, dtype=np.float16)
        with pytest.raises(ValidationError):
            CSR5Method().measure(csr, "A100")

    def test_measure_accepts_device_name_and_spec(self, rng):
        csr = random_csr(10, 10, rng)
        by_name = DASPMethod().measure(csr, "A100")
        by_spec = DASPMethod().measure(csr, A100)
        assert by_name.time_s == by_spec.time_s


class TestCustomDevice:
    def test_custom_spec_usable(self, rng):
        little = DeviceSpec(
            name="Little-GPU", arch="Test", sms=16, clock_ghz=1.0,
            mem_bw_gbs=300.0, triad_efficiency=0.85, l2_bytes=4 << 20,
            fp64_cuda_tflops=1.0, fp32_cuda_tflops=2.0,
            fp64_tensor_tflops=2.0, fp16_tensor_tflops=30.0)
        csr = random_csr(100, 100, rng)
        slow = DASPMethod().measure(csr, little)
        fast = DASPMethod().measure(csr, A100)
        assert slow.time_s > fast.time_s

    def test_fp64_tensorless_device_rejected(self):
        nodp = DeviceSpec(
            name="NoDP", arch="Test", sms=16, clock_ghz=1.0,
            mem_bw_gbs=300.0, triad_efficiency=0.85, l2_bytes=4 << 20,
            fp64_cuda_tflops=1.0, fp32_cuda_tflops=2.0,
            fp64_tensor_tflops=0.0, fp16_tensor_tflops=30.0)
        with pytest.raises(ValidationError, match="lacks FP64 MMA"):
            nodp.tensor_flops(64)


class TestWideAndDegenerateShapes:
    def test_single_row_matrix(self, rng):
        csr = random_csr(1, 5000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 3000))
        from repro.core import dasp_spmv

        x = rng.standard_normal(5000)
        assert np.allclose(dasp_spmv(csr, x), csr.matvec(x), rtol=1e-11)

    def test_single_column_matrix(self, rng):
        csr = random_csr(200, 1, rng,
                         row_len_sampler=lambda r, m: r.integers(0, 2, m))
        from repro.core import dasp_spmv

        x = rng.standard_normal(1)
        assert np.allclose(dasp_spmv(csr, x), csr.matvec(x))

    def test_one_by_one(self):
        csr = CSRMatrix((1, 1), [0, 1], [0], [2.5])
        from repro.core import dasp_spmv

        assert dasp_spmv(csr, np.array([2.0]))[0] == 5.0

    def test_all_methods_on_single_dense_row(self, rng):
        from repro.baselines import paper_methods

        csr = random_csr(1, 2000, rng,
                         row_len_sampler=lambda r, m: np.full(m, 1500))
        x = rng.standard_normal(2000)
        ref = csr.matvec(x)
        for method in paper_methods():
            y = method.run(method.prepare(csr), x)
            assert np.allclose(y, ref, rtol=1e-9), method.name


class TestH800Modeling:
    def test_fp16_faster_on_h800_than_a100(self, rng):
        csr = random_csr(2000, 2000, rng, dtype=np.float16,
                         row_len_sampler=lambda r, m: np.full(m, 30))
        t_a = DASPMethod().measure(csr, "A100").time_s
        t_h = DASPMethod().measure(csr, "H800").time_s
        assert t_h < t_a  # 2048 vs 1555 GB/s

    def test_h800_has_capped_fp64(self):
        assert H800.fp64_tensor_tflops < A100.fp64_tensor_tflops


class TestTopLevelErrorTaxonomy:
    """Satellite: the full error taxonomy is importable from `repro`."""

    def test_all_errors_reexported(self):
        import repro

        for name in ("QueueFullError", "RequestShedError", "MatrixMarketError",
                     "ResilienceError", "CircuitOpenError",
                     "DeadlineExceededError", "InjectedFault", "KernelFault",
                     "NumericFault", "PlanTooLargeError", "PreprocessFault",
                     "ServerClosedError"):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_subclass_relationships(self):
        import repro

        assert issubclass(repro.CircuitOpenError, repro.ResilienceError)
        assert issubclass(repro.DeadlineExceededError, repro.ResilienceError)
        assert issubclass(repro.KernelFault, repro.InjectedFault)
        assert issubclass(repro.PreprocessFault, repro.InjectedFault)
        assert issubclass(repro.NumericFault, repro.ResilienceError)
        assert issubclass(repro.ResilienceError, repro.ReproError)
        assert issubclass(repro.MatrixMarketError, repro.ReproError)
        assert issubclass(repro.QueueFullError, repro.ReproError)
        assert issubclass(repro.RequestShedError, repro.ReproError)

    def test_obs_module_exported(self):
        import repro

        assert "obs" in repro.__all__
        assert repro.obs.Obs is not None
