"""Tests for the FP16 precision substrate and error metrics."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.precision import (
    FP16_EPS,
    FP16_MAX,
    FP16_MIN_NORMAL,
    cast_matrix_fp16,
    fp16_mma_dot,
    max_relative_error,
    relative_l2_error,
    representable_fraction,
    to_fp16,
    ulps_fp16,
)
from tests.conftest import random_csr


class TestToFp16:
    def test_basic_cast(self):
        assert to_fp16([1.0, 2.0]).dtype == np.float16

    def test_strict_overflow_raises(self):
        with pytest.raises(ValidationError, match="overflow"):
            to_fp16([1e6], strict=True)

    def test_strict_underflow_raises(self):
        with pytest.raises(ValidationError, match="underflow"):
            to_fp16([1e-9], strict=True)

    def test_nonstrict_overflow_is_inf(self):
        assert np.isinf(to_fp16([1e6])[0])

    def test_strict_accepts_representable(self):
        out = to_fp16([0.0, 1.0, -65000.0, 0.001], strict=True)
        assert out.dtype == np.float16

    def test_constants(self):
        assert FP16_MAX == pytest.approx(65504.0)
        assert FP16_MIN_NORMAL == pytest.approx(6.104e-5, rel=1e-3)
        assert FP16_EPS == pytest.approx(2 ** -11)


class TestMmaDot:
    def test_fp32_accumulation_avoids_overflow(self):
        a = np.full(100, 100.0)
        b = np.full(100, 100.0)
        out = fp16_mma_dot(a, b)
        assert out.dtype == np.float32
        assert out == pytest.approx(1e6)

    def test_inputs_rounded_to_fp16(self):
        a = np.array([1.0 + 2 ** -12])  # rounds to 1.0 in fp16
        b = np.array([1.0])
        assert fp16_mma_dot(a, b) == np.float32(1.0)


class TestCastMatrix:
    def test_cast(self, rng):
        csr = random_csr(10, 10, rng)
        half = cast_matrix_fp16(csr)
        assert half.data.dtype == np.float16
        assert half.shape == csr.shape

    def test_strict_mode(self, rng):
        csr = random_csr(10, 10, rng)
        csr.data[0] = 1e9
        with pytest.raises(ValidationError):
            cast_matrix_fp16(csr, strict=True)


class TestRepresentableFraction:
    def test_all_good(self):
        assert representable_fraction([1.0, -2.0, 0.0]) == 1.0

    def test_half_bad(self):
        assert representable_fraction([1.0, 1e9]) == 0.5

    def test_empty(self):
        assert representable_fraction([]) == 1.0


class TestErrorMetrics:
    def test_l2_zero_for_equal(self):
        y = np.array([1.0, 2.0])
        assert relative_l2_error(y, y) == 0.0

    def test_l2_scale(self):
        assert relative_l2_error([1.1, 0.0], [1.0, 0.0]) == pytest.approx(0.1)

    def test_l2_zero_reference(self):
        assert relative_l2_error([1.0], [0.0]) == pytest.approx(1.0)

    def test_max_rel(self):
        assert max_relative_error([2.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_max_rel_empty(self):
        assert max_relative_error([], []) == 0.0

    def test_ulps_adjacent(self):
        one = np.float16(1.0)
        next_up = np.nextafter(one, np.float16(2.0), dtype=np.float16)
        assert ulps_fp16([next_up], [one])[0] == 1

    def test_ulps_sign_crossing(self):
        d = ulps_fp16([np.float16(-0.0)], [np.float16(0.0)])[0]
        assert d == 0  # -0 and +0 map to the same ordered value

    def test_ulps_symmetric(self):
        a, b = np.float16(1.5), np.float16(1.75)
        assert ulps_fp16([a], [b])[0] == ulps_fp16([b], [a])[0]


class TestDaspFp16EndToEnd:
    def test_error_bounded_by_row_length(self, rng):
        """FP32 accumulation keeps relative error near FP16 unit roundoff
        of the inputs, not sqrt(n) of it."""
        from repro.core import dasp_spmv

        csr = random_csr(64, 512, rng, dtype=np.float16,
                         row_len_sampler=lambda r, m: np.full(m, 64))
        x = rng.uniform(-1, 1, 512).astype(np.float16)
        y = dasp_spmv(csr, x)
        exact = csr.astype(np.float64).matvec(x.astype(np.float64))
        assert relative_l2_error(y, exact) < 5e-3
