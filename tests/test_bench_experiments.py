"""Tests for the programmatic experiment builders."""

import numpy as np
import pytest

from repro.bench import experiments as ex
from repro.matrices import synthetic_collection
from tests.conftest import random_csr


SMALL = synthetic_collection(6, seed=42, min_nnz=3000, max_nnz=20000)


class TestFigure1:
    def test_structure(self):
        r = ex.figure1()
        assert {p.method for p in r.points} == {"CSR5", "cuSPARSE-CSR", "DASP"}
        assert r.peaks["triad"] < r.peaks["theoretical"]
        assert r.mean_gbs("DASP") > 0

    def test_dasp_leads(self):
        r = ex.figure1()
        assert r.mean_gbs("DASP") > r.mean_gbs("CSR5")


class TestFigure2:
    def test_averages_sum_to_one(self):
        r = ex.figure2(collection_size=8)
        assert sum(r.averages.values()) == pytest.approx(1.0)
        assert len(r.rows) == 8

    def test_accepts_explicit_collection(self, rng):
        mats = {"a": random_csr(40, 40, rng), "b": random_csr(60, 60, rng)}
        r = ex.figure2(collection=mats)
        assert {row.matrix for row in r.rows} == {"a", "b"}


class TestFigure10:
    def test_summaries_for_all_baselines(self):
        r = ex.figure10(entries=SMALL)
        assert set(r.summaries) == set(ex.PAPER_FP64_GEOMEANS)
        for s in r.summaries.values():
            assert s.total == len(SMALL)

    def test_speedups_accessor(self):
        r = ex.figure10(entries=SMALL)
        sp = r.speedups("CSR5")
        assert len(sp) == len(SMALL)
        assert all(v > 0 for v in sp.values())


class TestFigure9:
    def test_fp16_methods_only(self):
        r = ex.figure9(entries=SMALL)
        assert set(r.result.times) == {"cuSPARSE-CSR", "DASP"}
        assert "cuSPARSE-CSR" in r.summaries


class TestFigure12:
    def test_all_21(self):
        ratios = ex.figure12()
        assert len(ratios) == 21
        assert ratios["mc2depi"].row_short > 0.99


class TestFigure13:
    def test_series_shapes(self):
        r = ex.figure13(sizes=(2000, 20000))
        assert len(r.sizes) == 2
        for m in r.methods:
            series = r.series(m)
            assert len(series) == 2 and all(v > 0 for v in series)

    def test_dasp_cheapest_small(self):
        r = ex.figure13(sizes=(2000,))
        series = {m: r.series(m)[0] for m in r.methods}
        assert min(series, key=series.get) == "DASP"


class TestSpMMScaling:
    def test_scaling(self, rng):
        csr = random_csr(100, 400, rng,
                         row_len_sampler=lambda r, m: np.full(m, 32))
        r = ex.spmm_scaling(csr, ks=(1, 8))
        assert r.utilization[8] > 5 * r.utilization[1]
        assert r.modeled_s[8] < 8 * r.modeled_s[1]
