"""Tests for the merge-based CSR baseline (cuSPARSE-CSR stand-in)."""

import numpy as np
import pytest

from repro.baselines import MergeCSRMethod, merge_path_partition
from repro.formats import CSRMatrix
from repro.gpu import A100
from tests.conftest import random_csr


class TestMergePartition:
    def test_covers_everything(self, rng):
        csr = random_csr(50, 80, rng)
        rs, ns = merge_path_partition(csr.indptr, csr.nnz, 7)
        assert rs[0] == 0 and ns[0] == 0
        assert rs[-1] == 50 and ns[-1] == csr.nnz

    def test_monotone(self, rng):
        csr = random_csr(50, 80, rng)
        rs, ns = merge_path_partition(csr.indptr, csr.nnz, 13)
        assert np.all(np.diff(rs) >= 0) and np.all(np.diff(ns) >= 0)

    def test_balanced_items(self, rng):
        """Each partition gets (m + nnz) / p merge items (+-1)."""
        csr = random_csr(64, 100, rng)
        parts = 9
        rs, ns = merge_path_partition(csr.indptr, csr.nnz, parts)
        items = np.diff(rs) + np.diff(ns)
        assert items.max() - items.min() <= 2

    def test_skew_immune(self, rng):
        """One row holding all nonzeros still splits evenly —
        the whole point of merge-path."""
        lens = np.zeros(64, dtype=np.int64)
        lens[0] = 640
        csr = random_csr(64, 1000, rng, row_len_sampler=lambda r, m: lens)
        rs, ns = merge_path_partition(csr.indptr, csr.nnz, 10)
        items = np.diff(rs) + np.diff(ns)
        assert items.max() <= items.min() + 2

    def test_single_partition(self, rng):
        csr = random_csr(10, 10, rng)
        rs, ns = merge_path_partition(csr.indptr, csr.nnz, 1)
        assert list(rs) == [0, 10] and list(ns) == [0, csr.nnz]


class TestKernel:
    def test_matches_reference(self, profiled_matrix, rng):
        method = MergeCSRMethod()
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = method.run(method.prepare(profiled_matrix), x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_carry_across_partitions(self, rng):
        """A single row split across many partitions must sum exactly."""
        csr = random_csr(1, 500, rng,
                         row_len_sampler=lambda r, m: np.full(m, 400))
        method = MergeCSRMethod(items_per_thread=4)
        x = rng.standard_normal(500)
        assert np.allclose(method.run(method.prepare(csr), x),
                           csr.matvec(x), rtol=1e-11)

    def test_fp16_supported(self, rng):
        csr = random_csr(30, 40, rng, dtype=np.float16)
        method = MergeCSRMethod()
        assert method.supports(np.float16)
        x = rng.uniform(-1, 1, 40).astype(np.float16)
        y = method.run(method.prepare(csr), x)
        ref = csr.matvec(x, accum_dtype=np.float32)
        assert np.allclose(np.asarray(y, np.float64), np.asarray(ref, np.float64),
                           rtol=2e-3, atol=1e-3)

    def test_empty(self):
        method = MergeCSRMethod()
        y = method.run(method.prepare(CSRMatrix.empty((4, 4))), np.ones(4))
        assert np.array_equal(y, np.zeros(4))


class TestEvents:
    def test_balanced(self, rng):
        lens = np.zeros(64, dtype=np.int64)
        lens[0] = 640
        csr = random_csr(64, 1000, rng, row_len_sampler=lambda r, m: lens)
        method = MergeCSRMethod()
        ev = method.events(method.prepare(csr), A100)
        assert ev.imbalance == 1.0

    def test_fp16_worse_coalescing(self, rng):
        method = MergeCSRMethod()
        ev64 = method.events(method.prepare(random_csr(30, 40, rng)), A100)
        ev16 = method.events(
            method.prepare(random_csr(30, 40, rng, dtype=np.float16)), A100)
        assert ev16.mem_efficiency < ev64.mem_efficiency

    def test_preprocess_nearly_free(self, rng):
        csr = random_csr(30, 40, rng)
        method = MergeCSRMethod()
        pe = method.preprocess_events(method.prepare(csr))
        assert pe.host_bytes == 0 and pe.sort_keys == 0
