"""Tests for repro._util helpers."""

import numpy as np
import pytest

from repro._util import (
    ReproError,
    ValidationError,
    as_index_array,
    as_ptr_array,
    as_value_array,
    ceil_div,
    check,
    default_rng,
    geomean,
    lengths_to_ptr,
    ptr_to_lengths,
    round_up,
    validate_shape,
)


class TestCheck:
    def test_passes_silently(self):
        check(True, "never raised")

    def test_raises_validation_error(self):
        with pytest.raises(ValidationError, match="boom"):
            check(False, "boom")

    def test_validation_error_is_repro_error(self):
        assert issubclass(ValidationError, ReproError)


class TestArrayCoercion:
    def test_value_array_promotes_int(self):
        arr = as_value_array([1, 2, 3])
        assert arr.dtype == np.float64

    def test_value_array_keeps_float32(self):
        arr = as_value_array(np.zeros(3, dtype=np.float32))
        assert arr.dtype == np.float32

    def test_value_array_explicit_dtype(self):
        arr = as_value_array([1.0, 2.0], dtype=np.float16)
        assert arr.dtype == np.float16

    def test_value_array_flattens(self):
        assert as_value_array(np.ones((2, 3))).shape == (6,)

    def test_index_array_dtype(self):
        assert as_index_array([1, 2]).dtype == np.int32

    def test_index_array_rejects_fractional(self):
        with pytest.raises(ValidationError):
            as_index_array([1.5])

    def test_index_array_accepts_whole_floats(self):
        out = as_index_array([1.0, 2.0])
        assert list(out) == [1, 2]

    def test_ptr_array_requires_entry(self):
        with pytest.raises(ValidationError):
            as_ptr_array([])

    def test_ptr_array_dtype(self):
        assert as_ptr_array([0, 3]).dtype == np.int64


class TestValidateShape:
    def test_normalizes(self):
        assert validate_shape((np.int64(3), 4.0)) == (3, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            validate_shape((-1, 4))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValidationError):
            validate_shape((1, 2, 3))


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_is_nan(self):
        assert np.isnan(geomean([]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            geomean([1.0, 0.0])

    def test_matches_numpy(self):
        vals = np.random.default_rng(0).uniform(0.1, 10, 50)
        assert geomean(vals) == pytest.approx(np.exp(np.log(vals).mean()))


class TestPrefixSums:
    def test_lengths_to_ptr(self):
        assert list(lengths_to_ptr([2, 0, 3])) == [0, 2, 2, 5]

    def test_roundtrip(self):
        lens = np.array([0, 5, 1, 0, 7])
        assert list(ptr_to_lengths(lengths_to_ptr(lens))) == list(lens)

    def test_empty(self):
        assert list(lengths_to_ptr([])) == [0]


class TestIntegerHelpers:
    @pytest.mark.parametrize("a,b,expected", [(0, 4, 0), (1, 4, 1), (4, 4, 1),
                                              (5, 4, 2), (63, 64, 1), (64, 64, 1)])
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_ceil_div_rejects_zero(self):
        with pytest.raises(ValidationError):
            ceil_div(3, 0)

    @pytest.mark.parametrize("a,m,expected", [(0, 8, 0), (1, 8, 8), (8, 8, 8),
                                              (9, 8, 16)])
    def test_round_up(self, a, m, expected):
        assert round_up(a, m) == expected


class TestDefaultRng:
    def test_passthrough(self):
        g = np.random.default_rng(1)
        assert default_rng(g) is g

    def test_seed_deterministic(self):
        assert default_rng(5).integers(1 << 30) == default_rng(5).integers(1 << 30)
