"""Tests for the full DASP SpMV (vectorized engine)."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.core import DASPMatrix, dasp_spmv
from repro.formats import CSRMatrix
from tests.conftest import ROW_PROFILES, random_csr


class TestCorrectness:
    def test_matches_reference_all_profiles(self, profiled_matrix, rng):
        x = rng.standard_normal(profiled_matrix.shape[1])
        y = dasp_spmv(profiled_matrix, x)
        assert np.allclose(y, profiled_matrix.matvec(x), rtol=1e-11)

    def test_empty_rows_zero(self, rng):
        csr = random_csr(50, 100, rng, empty_frac=0.4)
        x = rng.standard_normal(100)
        y = dasp_spmv(csr, x)
        empty = csr.row_lengths() == 0
        assert np.all(y[empty] == 0)

    def test_accepts_prebuilt_daspmatrix(self, rng):
        csr = random_csr(30, 40, rng)
        dasp = DASPMatrix.from_csr(csr)
        x = rng.standard_normal(40)
        assert np.allclose(dasp_spmv(dasp, x), csr.matvec(x))

    def test_rectangular(self, rng):
        csr = random_csr(30, 300, rng)
        x = rng.standard_normal(300)
        assert np.allclose(dasp_spmv(csr, x), csr.matvec(x))

    def test_identity(self):
        csr = CSRMatrix.from_dense(np.eye(16))
        x = np.arange(16.0)
        assert np.allclose(dasp_spmv(csr, x), x)

    def test_all_zero_matrix(self):
        csr = CSRMatrix.empty((10, 10))
        assert np.array_equal(dasp_spmv(csr, np.ones(10)), np.zeros(10))

    def test_deterministic(self, rng):
        csr = random_csr(60, 80, rng)
        x = rng.standard_normal(80)
        assert np.array_equal(dasp_spmv(csr, x), dasp_spmv(csr, x))

    def test_linearity(self, rng):
        csr = random_csr(40, 40, rng)
        x1, x2 = rng.standard_normal((2, 40))
        lhs = dasp_spmv(csr, 2 * x1 + 3 * x2)
        rhs = 2 * dasp_spmv(csr, x1) + 3 * dasp_spmv(csr, x2)
        assert np.allclose(lhs, rhs, rtol=1e-10)

    def test_wrong_x_length(self, rng):
        with pytest.raises(ValidationError):
            dasp_spmv(random_csr(5, 8, rng), np.zeros(5))

    def test_unknown_engine(self, rng):
        with pytest.raises(ValueError):
            dasp_spmv(random_csr(5, 8, rng), np.zeros(8), engine="quantum")


class TestPrecision:
    def test_fp64_output_dtype(self, rng):
        y = dasp_spmv(random_csr(10, 10, rng), np.zeros(10))
        assert y.dtype == np.float64

    def test_fp16_output_is_fp32_accumulator(self, rng):
        csr = random_csr(10, 10, rng, dtype=np.float16)
        y = dasp_spmv(csr, np.zeros(10, dtype=np.float16))
        assert y.dtype == np.float32

    def test_fp16_cast_output(self, rng):
        csr = random_csr(10, 10, rng, dtype=np.float16)
        y = dasp_spmv(csr, np.zeros(10, dtype=np.float16), cast_output=True)
        assert y.dtype == np.float16

    def test_fp16_matches_fp32_accum_reference(self, rng):
        csr = random_csr(60, 80, rng, dtype=np.float16)
        x = rng.uniform(-1, 1, 80).astype(np.float16)
        y = dasp_spmv(csr, x)
        ref = csr.matvec(x, accum_dtype=np.float32)
        # same precision contract -> tight agreement
        assert np.allclose(y, ref, rtol=1e-3, atol=1e-4)

    def test_fp16_no_overflow_with_fp32_accum(self, rng):
        """Summing many products that would overflow FP16 must be safe."""
        m = 1
        n = 4096
        csr = CSRMatrix((1, n), [0, n], np.arange(n), np.full(n, 1.0, np.float16))
        x = np.full(n, 30.0, dtype=np.float16)
        y = dasp_spmv(csr, x)
        assert np.isfinite(y[0]) and y[0] == pytest.approx(30.0 * n, rel=1e-3)
