"""Tests for the CSC and DIA formats."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.formats import CSCMatrix, CSRMatrix, DIAMatrix, to_csr
from repro.matrices import banded, grid2d
from tests.conftest import random_csr


class TestCSC:
    def test_roundtrip(self, rng):
        csr = random_csr(30, 25, rng)
        assert np.allclose(CSCMatrix.from_csr(csr).to_csr().to_dense(),
                           csr.to_dense())

    def test_matvec(self, profiled_matrix, rng):
        csc = CSCMatrix.from_csr(profiled_matrix)
        x = rng.standard_normal(profiled_matrix.shape[1])
        assert np.allclose(csc.matvec(x), profiled_matrix.matvec(x))

    def test_rmatvec_is_transpose(self, rng):
        csr = random_csr(20, 30, rng)
        csc = CSCMatrix.from_csr(csr)
        y = rng.standard_normal(20)
        assert np.allclose(csc.rmatvec(y), csr.to_dense().T @ y)

    def test_col_lengths(self, rng):
        csr = random_csr(20, 15, rng)
        csc = CSCMatrix.from_csr(csr)
        dense = csr.to_dense()
        assert np.array_equal(csc.col_lengths(),
                              (dense != 0).sum(axis=0))

    def test_empty_matrix(self):
        csc = CSCMatrix.from_csr(CSRMatrix.empty((4, 6)))
        assert csc.nnz == 0
        assert np.array_equal(csc.matvec(np.ones(6)), np.zeros(4))
        assert np.array_equal(csc.rmatvec(np.ones(4)), np.zeros(6))

    def test_validation(self):
        with pytest.raises(ValidationError):
            CSCMatrix((2, 2), [0, 1], [0], [1.0])  # indptr too short

    def test_rmatvec_wrong_length(self, rng):
        csc = CSCMatrix.from_csr(random_csr(5, 8, rng))
        with pytest.raises(ValidationError):
            csc.rmatvec(np.zeros(8))

    def test_to_csr_funnel(self, rng):
        csr = random_csr(10, 10, rng)
        assert np.allclose(to_csr(CSCMatrix.from_csr(csr)).to_dense(),
                           csr.to_dense())


class TestDIA:
    def test_roundtrip(self, rng):
        csr = random_csr(15, 15, rng)
        dia = DIAMatrix.from_csr(csr)
        assert np.allclose(dia.to_csr().to_dense(), csr.to_dense())

    def test_matvec(self, rng):
        csr = banded(200, 5, seed=1)
        dia = DIAMatrix.from_csr(csr)
        x = rng.standard_normal(200)
        assert np.allclose(dia.matvec(x), csr.matvec(x))

    def test_rectangular(self, rng):
        csr = random_csr(10, 20, rng)
        dia = DIAMatrix.from_csr(csr)
        x = rng.standard_normal(20)
        assert np.allclose(dia.matvec(x), csr.matvec(x))

    def test_banded_few_diagonals(self):
        dia = DIAMatrix.from_csr(banded(300, 3, fill=1.0, seed=0))
        assert dia.n_diagonals <= 7

    def test_grid_five_diagonals(self):
        dia = DIAMatrix.from_csr(grid2d(12, 12, drop=0.0, seed=0))
        assert dia.n_diagonals == 5

    def test_scattered_explodes(self, rng):
        csr = random_csr(64, 64, rng)
        with pytest.raises(ValidationError, match="diagonals"):
            DIAMatrix.from_csr(csr, max_diagonals=4)

    def test_fill_ratio(self):
        # a single off-diagonal of a 100x100 matrix: 100 slots, ~99 real
        d = np.zeros((100, 100))
        d[np.arange(99), np.arange(99) + 1] = 1.0
        dia = DIAMatrix.from_csr(CSRMatrix.from_dense(d))
        assert dia.fill_ratio == pytest.approx(100 / 99)

    def test_offsets_sorted(self, rng):
        dia = DIAMatrix.from_csr(random_csr(20, 20, rng))
        assert np.all(np.diff(dia.offsets) > 0)

    def test_empty(self):
        dia = DIAMatrix.from_csr(CSRMatrix.empty((5, 5)))
        assert dia.n_diagonals == 0
        assert np.array_equal(dia.matvec(np.ones(5)), np.zeros(5))
