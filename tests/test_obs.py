"""Unit tests for `repro.obs` — registry, tracer, exposition."""

import json

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    DEVICE_PHASES,
    NULL_OBS,
    MetricError,
    MetricsRegistry,
    Obs,
    Tracer,
    export,
    get_obs,
    set_obs,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("a.total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("a.total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_idempotent_creation_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.total") is reg.counter("a.total")

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a.total", {"k": 1}).inc(2)
        reg.counter("a.total", {"k": 2}).inc(3)
        assert reg.counter("a.total", {"k": 1}).value == 2
        assert reg.family_total("a.total") == 5
        assert len(reg.family("a.total")) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.total")
        with pytest.raises(MetricError):
            reg.gauge("a.total")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2


class TestHistogram:
    def test_boundary_lands_in_bucket(self):
        # Prometheus `le` semantics: v <= edge, boundary inclusive.
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            h.observe(v)
        snap = h.value
        assert snap["buckets"] == [(1.0, 2), (2.0, 2), (4.0, 1)]
        assert snap["inf"] == 1
        assert snap["count"] == 6
        assert snap["sum"] == pytest.approx(18.0)

    def test_cumulative_counts(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_non_increasing_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram("bad2", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram("empty", buckets=())

    def test_default_buckets_accepted(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_redeclare_different_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("lat", buckets=(1.0, 3.0))


class TestTracer:
    def test_nesting_and_roots(self):
        tr = Tracer(clock=lambda: 0.0)
        with tr.span("batch") as b:
            with tr.span("kernel") as k:
                k.set_device_time(2e-6)
            assert b.children == [k]
        roots = tr.traces()
        assert [sp.name for sp in roots] == ["batch"]
        assert roots[0].children[0].parent_id == roots[0].span_id

    def test_error_status_set_and_reraised(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("batch"):
                raise ValueError("boom")
        assert tr.traces()[0].status == "error"

    def test_device_time_by_name_sums_across_trees(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("kernel") as sp:
                sp.child("regular_mma", device_s=1e-6)
        assert tr.device_time_by_name()["regular_mma"] == pytest.approx(3e-6)

    def test_attribution_coverage(self):
        tr = Tracer()
        with tr.span("batch") as sp:
            sp.child("preprocess", device_s=3e-6)
            sp.child("regular_mma", device_s=1e-6)
        att = tr.attribution(4e-6)
        assert set(att["phases"]) == set(DEVICE_PHASES)
        assert att["coverage"] == pytest.approx(1.0)

    def test_bounded_trace_store(self):
        tr = Tracer(max_traces=2)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.traces()) == 2
        assert tr.dropped == 3
        assert [sp.name for sp in tr.traces()] == ["s3", "s4"]


class TestObsHandle:
    def test_disabled_handle_is_noop(self):
        c = NULL_OBS.counter("x")
        c.inc(100)
        assert c.value == 0.0
        with NULL_OBS.span("anything") as sp:
            sp.set_device_time(1.0)
            assert sp.child("k") is sp
        assert NULL_OBS.registry is None and NULL_OBS.tracer is None

    def test_tracing_flag(self):
        assert not Obs().tracing
        assert Obs(tracer=Tracer()).tracing

    def test_global_handle_roundtrip(self):
        fresh = Obs()
        previous = set_obs(fresh)
        try:
            assert get_obs() is fresh
        finally:
            set_obs(previous)
        assert get_obs() is previous


class TestExport:
    def _populated(self):
        obs = Obs(tracer=Tracer(clock=lambda: 0.0))
        obs.counter("serve.requests_total").inc(3)
        obs.counter("serve.batch_size_total", {"k": 8}).inc(2)
        obs.gauge("serve.queue_depth").set(1)
        h = obs.histogram("serve.latency_seconds", buckets=(1e-6, 1e-3))
        h.observe(5e-7)
        h.observe(2e-3)
        with obs.span("batch", attrs={"matrix": "abcd"}) as sp:
            sp.child("regular_mma", device_s=1e-6)
        return obs

    def test_prometheus_golden(self):
        obs = self._populated()
        assert export.to_prometheus(obs.registry) == (
            "# TYPE serve_batch_size_total counter\n"
            'serve_batch_size_total{k="8"} 2\n'
            "# TYPE serve_latency_seconds histogram\n"
            'serve_latency_seconds_bucket{le="1e-06"} 1\n'
            'serve_latency_seconds_bucket{le="0.001"} 1\n'
            'serve_latency_seconds_bucket{le="+Inf"} 2\n'
            "serve_latency_seconds_sum 0.0020005\n"
            "serve_latency_seconds_count 2\n"
            "# TYPE serve_queue_depth gauge\n"
            "serve_queue_depth 1\n"
            "# TYPE serve_requests_total counter\n"
            "serve_requests_total 3\n"
        )

    def test_json_doc_shape_and_roundtrip(self):
        obs = self._populated()
        doc = json.loads(export.render_json(obs, device_total_s=1e-6))
        assert doc["version"] == 1
        assert doc["dropped_traces"] == 0
        names = {m["name"] for m in doc["metrics"]}
        assert "serve.requests_total" in names
        (root,) = doc["traces"]
        assert root["name"] == "batch"
        assert root["attrs"] == {"matrix": "abcd"}
        assert root["children"][0]["name"] == "regular_mma"
        assert doc["attribution"]["coverage"] == pytest.approx(1.0)

    def test_json_doc_without_tracer(self):
        obs = Obs()
        obs.counter("x").inc()
        doc = export.to_json_doc(obs)
        assert doc["traces"] == [] and doc["attribution"] is None

    def test_format_span_tree_indents(self):
        obs = self._populated()
        lines = export.format_span_tree(obs.tracer.traces()[0])
        assert lines[0].startswith("batch")
        assert lines[1].startswith("  regular_mma")
