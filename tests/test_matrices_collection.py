"""Tests for the synthetic collection (SuiteSparse stand-in)."""

import numpy as np
import pytest

from repro.matrices import iter_matrices, synthetic_collection


class TestCollection:
    def test_count(self):
        assert len(synthetic_collection(25, seed=1)) == 25

    def test_unique_names(self):
        entries = synthetic_collection(40, seed=2)
        names = [e.name for e in entries]
        assert len(set(names)) == len(names)

    def test_deterministic_across_calls(self):
        a = synthetic_collection(10, seed=3)
        b = synthetic_collection(10, seed=3)
        for ea, eb in zip(a, b):
            assert ea.name == eb.name
            ma, mb = ea.matrix(), eb.matrix()
            assert ma.shape == mb.shape and ma.nnz == mb.nnz

    def test_lazy_build_independent_of_order(self):
        entries = synthetic_collection(6, seed=4)
        first = entries[3].matrix()
        # building other entries must not change entry 3
        entries[0].matrix()
        again = entries[3].matrix()
        assert np.array_equal(first.data, again.data)

    def test_family_diversity(self):
        entries = synthetic_collection(80, seed=5)
        families = {e.family for e in entries}
        assert len(families) >= 6

    def test_size_range(self):
        entries = synthetic_collection(30, seed=6, min_nnz=5_000,
                                       max_nnz=50_000)
        for e in entries:
            nnz = e.matrix().nnz
            # generators only approximate the target; allow slack
            assert 500 < nnz < 200_000, (e.name, nnz)

    def test_iter_matrices(self):
        entries = synthetic_collection(4, seed=7)
        pairs = list(iter_matrices(entries))
        assert len(pairs) == 4
        for name, csr in pairs:
            assert isinstance(name, str)
            csr.validate()

    def test_all_matrices_valid(self):
        for e in synthetic_collection(20, seed=8):
            m = e.matrix()
            m.validate()
            assert m.nnz > 0
