"""Tests for the analytic cost model."""

import numpy as np
import pytest

from repro.gpu import (
    A100,
    H800,
    KernelEvents,
    PreprocessEvents,
    estimate_preprocess_time,
    estimate_time,
    spmv_gflops,
)
from repro.gpu.cost_model import schedule_imbalance, effective_bandwidth_gbs
from tests.conftest import random_csr


def make_events(**kw):
    defaults = dict(bytes_val=8e6, bytes_idx=4e6, bytes_ptr=1e5, bytes_x=2e6,
                    bytes_y=1e6, flops_cuda=2e6, threads=500_000)
    defaults.update(kw)
    return KernelEvents(**defaults)


class TestEstimateTime:
    def test_parts_positive(self):
        parts = estimate_time(make_events(), A100)
        assert parts.random_access > 0 and parts.compute > 0
        assert parts.misc > 0 and parts.launch > 0
        assert parts.total == pytest.approx(
            parts.random_access + parts.compute + parts.misc + parts.launch)

    def test_more_bytes_more_time(self):
        t1 = estimate_time(make_events(), A100).total
        t2 = estimate_time(make_events(bytes_val=80e6), A100).total
        assert t2 > t1

    def test_mma_cheaper_than_cuda_for_same_flops(self):
        cuda = estimate_time(make_events(flops_cuda=1e9, flops_mma=0), A100)
        mma = estimate_time(make_events(flops_cuda=0, flops_mma=1e9), A100)
        assert mma.compute < cuda.compute

    def test_imbalance_scales_compute_fully(self):
        base = estimate_time(make_events(), A100)
        skew = estimate_time(make_events(imbalance=3.0), A100)
        assert skew.compute == pytest.approx(3.0 * base.compute)

    def test_imbalance_scales_memory_partially(self):
        base = estimate_time(make_events(), A100)
        skew = estimate_time(make_events(imbalance=3.0), A100)
        assert base.misc < skew.misc < 3.0 * base.misc

    def test_mem_efficiency_slows_traffic(self):
        fast = estimate_time(make_events(), A100)
        slow = estimate_time(make_events(mem_efficiency=0.5), A100)
        assert slow.misc == pytest.approx(2.0 * fast.misc)
        assert slow.compute == pytest.approx(fast.compute)

    def test_serial_path_hidden_when_short(self):
        base = estimate_time(make_events(), A100)
        with_serial = estimate_time(make_events(serial_iters=10), A100)
        assert with_serial.total == pytest.approx(base.total)

    def test_serial_path_exposed_when_long(self):
        base = estimate_time(make_events(), A100)
        huge = estimate_time(make_events(serial_iters=1e8), A100)
        assert huge.total > 10 * base.total

    def test_launch_overhead_per_kernel(self):
        one = estimate_time(make_events(kernel_launches=1), A100)
        three = estimate_time(make_events(kernel_launches=3), A100)
        assert three.launch == pytest.approx(3 * one.launch)

    def test_fractional_launches(self):
        frac = estimate_time(make_events(kernel_launches=1.5), A100)
        assert frac.launch == pytest.approx(1.5 * A100.launch_overhead_s)

    def test_small_kernels_see_lower_bandwidth(self):
        big = estimate_time(make_events(threads=1_000_000), A100)
        small = estimate_time(make_events(threads=100), A100)
        assert small.misc > big.misc

    def test_h800_faster_memory(self):
        ev = make_events(flops_cuda=0)
        assert estimate_time(ev, H800).misc < estimate_time(ev, A100).misc

    def test_fp16_tensor_flops_cheap(self):
        ev = make_events(flops_cuda=0, flops_mma=1e9)
        t64 = estimate_time(ev, A100, dtype_bits=64).compute
        t16 = estimate_time(ev, A100, dtype_bits=16).compute
        assert t16 < t64 / 10  # 312 vs 19.5 TFlops

    def test_device_by_name(self):
        ev = make_events()
        assert estimate_time(ev, "A100").total == estimate_time(ev, A100).total


class TestFractions:
    def test_sum_to_one(self):
        fr = estimate_time(make_events(), A100).fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_keys(self):
        fr = estimate_time(make_events(), A100).fractions()
        assert set(fr) == {"random_access", "compute", "misc"}


class TestScheduleImbalance:
    def test_uniform_is_one(self):
        assert schedule_imbalance(np.ones(1000), A100) == pytest.approx(1.0)

    def test_single_heavy_unit(self):
        work = np.ones(1000)
        work[0] = 500.0
        assert schedule_imbalance(work, A100) > 100

    def test_empty_is_one(self):
        assert schedule_imbalance(np.zeros(0), A100) == 1.0

    def test_never_below_one(self):
        assert schedule_imbalance(np.array([1.0, 1.0]), A100) >= 1.0


class TestPreprocessTime:
    def test_zero_events(self):
        assert estimate_preprocess_time(PreprocessEvents(), A100) == 0.0

    def test_host_slower_than_device(self):
        host = estimate_preprocess_time(PreprocessEvents(host_bytes=1e8), A100)
        dev = estimate_preprocess_time(PreprocessEvents(device_bytes=1e8), A100)
        assert host > dev

    def test_sort_term(self):
        t = estimate_preprocess_time(PreprocessEvents(sort_keys=1e6), A100)
        assert t > 0

    def test_fixed_overheads(self):
        t = estimate_preprocess_time(
            PreprocessEvents(kernel_launches=10, allocations=5), A100)
        assert t == pytest.approx(10 * A100.launch_overhead_s + 5 * 8e-6)


class TestMetrics:
    def test_spmv_gflops(self):
        assert spmv_gflops(1_000_000, 1e-3) == pytest.approx(2.0)

    def test_spmv_gflops_zero_time(self):
        assert np.isnan(spmv_gflops(10, 0.0))

    def test_effective_bandwidth_gbs(self, rng):
        csr = random_csr(100, 100, rng)
        gbs = effective_bandwidth_gbs(csr, 1e-6)
        useful = csr.nnz * 12 + 101 * 8 + 200 * 8
        assert gbs == pytest.approx(useful / 1e-6 / 1e9)
