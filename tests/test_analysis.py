"""Tests for the analysis layer (metrics, breakdown, bandwidth, roofline)."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_AVERAGES,
    bandwidth_points,
    breakdown_averages,
    csr_breakdown,
    gflops_table,
    peak_lines,
    roofline,
    speedup_summary,
    spmv_intensity,
)
from tests.conftest import random_csr


class TestSpeedupSummary:
    def test_basic(self):
        ref = {"a": 1.0, "b": 2.0}
        base = {"a": 2.0, "b": 1.0}
        s = speedup_summary(ref, base, "base")
        assert s.geomean == pytest.approx(1.0)
        assert s.maximum == 2.0 and s.minimum == 0.5
        assert s.wins == 1 and s.total == 2
        assert s.win_rate == 0.5

    def test_missing_entries_skipped(self):
        s = speedup_summary({"a": 1.0, "b": 1.0}, {"a": 3.0}, "x")
        assert s.total == 1 and s.geomean == pytest.approx(3.0)

    def test_nonfinite_skipped(self):
        s = speedup_summary({"a": 1.0, "b": 1.0},
                            {"a": float("nan"), "b": 2.0}, "x")
        assert s.total == 1

    def test_empty(self):
        s = speedup_summary({}, {}, "x")
        assert np.isnan(s.geomean) and s.total == 0

    def test_str_format(self):
        s = speedup_summary({"a": 1.0}, {"a": 2.0}, "CSR5")
        assert "CSR5" in str(s) and "2.00x" in str(s)


class TestGflopsTable:
    def test_conversion(self):
        table = gflops_table({"m": {"a": 1e-3}}, {"a": 500_000})
        assert table["m"]["a"] == pytest.approx(1.0)

    def test_zero_time_nan(self):
        table = gflops_table({"m": {"a": 0.0}}, {"a": 10})
        assert np.isnan(table["m"]["a"])


class TestBreakdown:
    def test_fractions_sum_to_one(self, rng):
        row = csr_breakdown(random_csr(100, 200, rng), "A100", matrix_name="t")
        assert row.random_access + row.compute + row.misc == pytest.approx(1.0)

    def test_averages(self, rng):
        rows = [csr_breakdown(random_csr(50, 80, rng), "A100")
                for _ in range(3)]
        avg = breakdown_averages(rows)
        assert sum(avg.values()) == pytest.approx(1.0)

    def test_paper_averages_recorded(self):
        assert PAPER_AVERAGES["compute"] == 0.211
        assert sum(PAPER_AVERAGES.values()) == pytest.approx(1.0)

    def test_empty_rows_list(self):
        assert breakdown_averages([]) == {"random_access": 0.0,
                                          "compute": 0.0, "misc": 0.0}


class TestBandwidth:
    def test_peak_lines(self):
        lines = peak_lines("A100")
        assert lines["theoretical"] == 1555.0
        assert lines["triad"] < lines["theoretical"]

    def test_points(self, rng):
        csr = random_csr(50, 50, rng)
        pts = bandwidth_points({"DASP": {"m": 1e-5}}, {"m": csr},
                               methods=("DASP",))
        assert len(pts) == 1
        assert pts[0].gbs > 0 and pts[0].nnz == csr.nnz

    def test_faster_time_higher_bandwidth(self, rng):
        csr = random_csr(50, 50, rng)
        fast = bandwidth_points({"DASP": {"m": 1e-6}}, {"m": csr},
                                methods=("DASP",))[0]
        slow = bandwidth_points({"DASP": {"m": 1e-5}}, {"m": csr},
                                methods=("DASP",))[0]
        assert fast.gbs > slow.gbs


class TestRoofline:
    def test_spmv_is_memory_bound(self, rng):
        csr = random_csr(100, 100, rng)
        point = roofline("A100", spmv_intensity(csr))
        assert point.bound == "memory"

    def test_high_intensity_compute_bound(self):
        point = roofline("A100", 1e4)
        assert point.bound == "compute"

    def test_tensor_peak_higher(self):
        p_cuda = roofline("A100", 1e4, use_tensor=False)
        p_tc = roofline("A100", 1e4, use_tensor=True)
        assert p_tc.attainable_gflops > p_cuda.attainable_gflops

    def test_intensity_cached_vs_streamed(self, rng):
        # needs nnz >> n so per-access charging exceeds one pass over x
        csr = random_csr(500, 500, rng,
                         row_len_sampler=lambda r, m: np.full(m, 12))
        assert spmv_intensity(csr, cached_x=True) > spmv_intensity(
            csr, cached_x=False)
