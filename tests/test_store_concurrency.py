"""Concurrency regression tests for the shared plan store.

The cluster layer warms N replicas from one store directory on N
threads while gc/quarantine may rewrite it — the advisory per-root
lock (shared by every PlanStore opened on the same directory) must
keep concurrent readers consistent, and a vanished artifact must read
as a miss, never a crash.
"""

import threading

import numpy as np
import pytest

from repro.core import DASPMatrix
from repro.serve import PlanRegistry
from repro.store import PlanStore, fingerprint_csr
from tests.conftest import random_csr


def populate(store_dir, n=6, seed=0):
    rng = np.random.default_rng(seed)
    store = PlanStore(store_dir)
    fps = []
    for i in range(n):
        csr = random_csr(40 + 8 * i, 40 + 8 * i, rng)
        fp = fingerprint_csr(csr)
        store.put(fp, DASPMatrix.from_csr(csr))
        fps.append(fp)
    return fps


def test_shared_root_lock_is_one_object(tmp_path):
    a = PlanStore(tmp_path / "s")
    b = PlanStore(tmp_path / "s")
    c = PlanStore(tmp_path / "other")
    assert a._lock is b._lock
    assert a._lock is not c._lock


def test_two_threads_warm_same_fingerprints(tmp_path):
    """Two replicas warming the SAME fingerprint set concurrently from
    one directory: every warm succeeds, no artifact read tears."""
    store_dir = tmp_path / "plans"
    fps = populate(store_dir)
    registries = [PlanRegistry(store=store_dir) for _ in range(2)]
    errors: list[BaseException] = []
    warmed = [[], []]
    barrier = threading.Barrier(2)

    def work(i):
        try:
            barrier.wait(timeout=10)
            for _ in range(5):  # re-warm to stretch the race window
                for fp in fps:
                    load_s = registries[i].warm(fp)
                    warmed[i].append((fp, load_s))
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    for i in range(2):
        assert len(warmed[i]) == 5 * len(fps)
        # first pass loads every artifact from disk (later passes hit
        # the memory tier, where warm() reports None by contract)
        assert all(load_s is not None
                   for _, load_s in warmed[i][:len(fps)])
        snap = registries[i].store.snapshot()
        assert snap["load_failures"] == 0


def test_warm_races_gc(tmp_path):
    """Readers warming while gc shrinks the store never crash: an
    artifact gc removed mid-iteration is a miss, not an error."""
    store_dir = tmp_path / "plans"
    fps = populate(store_dir, n=8)
    reader_store = PlanStore(store_dir)
    # capacity that keeps ~half the artifacts
    total = reader_store.nbytes()
    gc_store = PlanStore(store_dir, capacity_bytes=total // 2)
    errors: list[BaseException] = []
    loaded = []

    def read_loop():
        try:
            for _ in range(10):
                for fp in fps:
                    plan = reader_store.load(fp)
                    loaded.append(plan is not None)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def gc_loop():
        try:
            for _ in range(10):
                gc_store.gc()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=read_loop),
               threading.Thread(target=gc_loop)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    # some loads hit, and misses (gc'd artifacts) were clean Nones
    assert any(loaded)


def test_vanished_artifact_is_a_miss(tmp_path):
    store_dir = tmp_path / "plans"
    fps = populate(store_dir, n=1)
    store = PlanStore(store_dir)
    assert store.load(fps[0]) is not None
    store.path_for(fps[0]).unlink()
    assert store.load(fps[0]) is None
    assert store.peek_header(fps[0]) is None


def test_concurrent_put_same_fingerprint(tmp_path):
    """Two writers publishing the same fingerprint: last replace wins,
    the artifact stays readable throughout."""
    rng = np.random.default_rng(1)
    csr = random_csr(64, 64, rng)
    fp = fingerprint_csr(csr)
    plan = DASPMatrix.from_csr(csr)
    stores = [PlanStore(tmp_path / "s") for _ in range(2)]
    errors: list[BaseException] = []

    def put_loop(store):
        try:
            for _ in range(10):
                store.put(fp, plan, overwrite=True)
                assert store.load(fp) is not None
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=put_loop, args=(s,)) for s in stores]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert stores[0].verify(fp)
