"""MatrixVersion chain: registry updates, delta persistence, rollback.

The serving-side contract for dynamic matrices:

* ``PlanRegistry.update`` advances ``fp -> fp@v{n}`` by *patching*, and
  an unversioned lookup can never again observe a pre-update plan (the
  stale-version regression test);
* in-flight requests pinned to an old version keep draining against it
  untouched;
* ``PlanStore`` persists deltas as CRC-checked ``aux.delta.*`` records,
  replays them on load (including after a process restart), folds old
  records past the retention window, and rolls back cheaply;
* all of it is *bitwise* equivalent to rebuilding from the updated CSR
  — including sharded plans and stored/reloaded plans.
"""

import numpy as np
import pytest

from repro.core import (
    DASPMatrix,
    StructuralUpdate,
    ValueUpdate,
    apply_structural_to_csr,
    apply_update,
    clone_for_patch,
    dasp_spmv,
    random_delta,
)
from repro.serve.plan_cache import PlanRegistry, matrix_fingerprint
from repro.shard import build_sharded_plan
from repro.store import DELTA_RETAIN, PlanStore

from .conftest import ROW_PROFILES, random_csr
from .test_delta import apply_to_dense, from_dense, to_dense


@pytest.fixture
def matrix(rng):
    return random_csr(80, 400, rng, row_len_sampler=ROW_PROFILES["mixed"])


def evolve(csr, delta):
    """Reference CSR after *delta* (canonical sorted construction)."""
    dense = to_dense(csr)
    apply_to_dense(dense, delta)
    return from_dense(dense)


class TestRegistryVersionChain:
    def test_update_advances_and_matches_rebuild(self, matrix, rng, tmp_path):
        reg = PlanRegistry(store=PlanStore(tmp_path))
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        x = rng.standard_normal(matrix.shape[1])
        csr = matrix
        for i in range(1, 6):
            d = random_delta(csr, rng, structural=i % 2 == 0, n_entries=9)
            v, info, plan = reg.update(fp, d)
            assert v == i == reg.version_of(fp)
            csr = evolve(csr, d)
            assert np.array_equal(dasp_spmv(plan, x),
                                  dasp_spmv(DASPMatrix.from_csr(csr), x))

    def test_stale_version_never_served(self, matrix, rng):
        """Regression: after a StructuralUpdate advances the chain, an
        unversioned (current) read must never get the pre-update plan —
        not from RAM, not via peek, not via ``in``."""
        reg = PlanRegistry()  # RAM-only: the pre-update plan stays cached
        fp = matrix_fingerprint(matrix)
        old_plan, _ = reg.get(matrix, fingerprint=fp)
        d = random_delta(matrix, rng, structural=True, n_entries=10)
        v, _, new_plan = reg.update(fp, d)
        assert v == 1
        got, source, _ = reg.get_ex(None, fingerprint=fp)
        assert got is new_plan and source == "ram"
        assert reg.peek(fp) is new_plan
        # the old version is still addressable — but only explicitly
        assert reg.peek(fp + "@v0") is old_plan
        x = rng.standard_normal(matrix.shape[1])
        csr1 = evolve(matrix, d)
        assert np.array_equal(dasp_spmv(got, x),
                              dasp_spmv(DASPMatrix.from_csr(csr1), x))

    def test_old_version_drains_unmodified(self, matrix, rng):
        reg = PlanRegistry()
        fp = matrix_fingerprint(matrix)
        old_plan, _ = reg.get(matrix, fingerprint=fp)
        x = rng.standard_normal(matrix.shape[1])
        y0 = dasp_spmv(old_plan, x)
        reg.update(fp, random_delta(matrix, rng, n_entries=25))
        drained, source, _ = reg.get_ex(None, fingerprint=fp + "@v0")
        assert source == "ram"
        assert np.array_equal(dasp_spmv(drained, x), y0), \
            "value update leaked into the drained pre-update plan"

    def test_only_previous_version_retained(self, matrix, rng):
        reg = PlanRegistry()
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        csr = matrix
        for _ in range(3):
            d = random_delta(csr, rng, n_entries=5)
            reg.update(fp, d)
            csr = evolve(csr, d)
        assert reg.peek(fp + "@v3") is not None
        assert reg.peek(fp + "@v2") is not None   # drain window
        assert reg.peek(fp + "@v1") is None       # retired
        assert reg.peek(fp + "@v0") is None

    def test_update_requires_plan_or_csr(self, matrix, rng):
        reg = PlanRegistry()  # nothing cached, no store
        fp = matrix_fingerprint(matrix)
        d = random_delta(matrix, rng, n_entries=3)
        with pytest.raises(KeyError):
            reg.update(fp, d)
        v, info, plan = reg.update(fp, d, csr=matrix)  # rebuild fallback
        assert v == 1 and plan is not None

    def test_counters(self, matrix, rng):
        reg = PlanRegistry()
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        csr = matrix
        for structural in (False, True, False):
            d = random_delta(csr, rng, structural=structural, n_entries=6)
            reg.update(fp, d)
            csr = evolve(csr, d)
        assert reg.obs.counter("delta.value_total").value == 2
        assert reg.obs.counter("delta.structural_total").value == 1
        patch = reg.obs.counter("delta.patch_modeled_seconds_total").value
        rebuild = reg.obs.counter("delta.rebuild_modeled_seconds_total").value
        assert 0 < patch < rebuild


class TestStoreDeltaPersistence:
    def test_replay_on_load_after_restart(self, matrix, rng, tmp_path):
        reg = PlanRegistry(store=PlanStore(tmp_path))
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        x = rng.standard_normal(matrix.shape[1])
        csr = matrix
        for i in range(4):
            d = random_delta(csr, rng, structural=i % 2 == 1, n_entries=8)
            reg.update(fp, d)
            csr = evolve(csr, d)
        # "restart": a fresh registry over the same store directory
        reg2 = PlanRegistry(store=PlanStore(tmp_path))
        plan, source, load_s = reg2.get_ex(None, fingerprint=fp,
                                           load_only=True)
        assert source == "store" and load_s > 0
        assert reg2.version_of(fp) == 4, "store version not adopted"
        assert np.array_equal(dasp_spmv(plan, x),
                              dasp_spmv(DASPMatrix.from_csr(csr), x)), \
            "replayed plan != rebuild of updated CSR"

    def test_retention_folds_old_deltas(self, matrix, rng, tmp_path):
        store = PlanStore(tmp_path)
        reg = PlanRegistry(store=store)
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        csr = matrix
        n_updates = DELTA_RETAIN + 4
        for _ in range(n_updates):
            d = random_delta(csr, rng, n_entries=5)
            reg.update(fp, d)
            csr = evolve(csr, d)
        base, versions = store.delta_state(fp)
        assert len(versions) == DELTA_RETAIN
        assert base == n_updates - DELTA_RETAIN
        assert store.current_version(fp) == n_updates
        assert store.snapshot()["delta_folded"] == n_updates - DELTA_RETAIN

    def test_rollback_window(self, matrix, rng, tmp_path):
        store = PlanStore(tmp_path)
        reg = PlanRegistry(store=store)
        fp = matrix_fingerprint(matrix)
        reg.get(matrix, fingerprint=fp)
        x = rng.standard_normal(matrix.shape[1])
        csr = matrix
        history = [csr]
        for i in range(5):
            d = random_delta(csr, rng, structural=i == 2, n_entries=6)
            reg.update(fp, d)
            csr = evolve(csr, d)
            history.append(csr)
        plan = reg.rollback(fp, 3)
        assert plan is not None and reg.version_of(fp) == 3
        assert np.array_equal(dasp_spmv(plan, x),
                              dasp_spmv(DASPMatrix.from_csr(history[3]), x))
        # chain continues contiguously after the rollback
        d = random_delta(history[3], rng, n_entries=4)
        v, _, plan4 = reg.update(fp, d)
        assert v == 4
        ref = DASPMatrix.from_csr(evolve(history[3], d))
        assert np.array_equal(dasp_spmv(plan4, x), dasp_spmv(ref, x))
        # outside the retained window -> refused, chain unchanged
        assert reg.rollback(fp, 99) is None
        assert reg.version_of(fp) == 4

    def test_seed_plan_with_overlay_consolidated(self, matrix, rng,
                                                 tmp_path):
        """A seed plan carrying an overlay must not be persisted as-is:
        the artifact keeps only slabs+CSR, so the overlay is compacted
        into them first."""
        store = PlanStore(tmp_path)
        plan = DASPMatrix.from_csr(matrix)
        d1 = random_delta(matrix, rng, structural=True, n_entries=10)
        plan, _ = apply_update(plan, d1, auto_compact=False)
        csr1 = evolve(matrix, d1)
        fp = matrix_fingerprint(matrix)
        d2 = random_delta(csr1, rng, n_entries=5)
        store.put_delta(fp, 2, d2, seed_plan=plan)
        got = store.load(fp, gate=False)
        assert got is not None
        x = rng.standard_normal(matrix.shape[1])
        ref = DASPMatrix.from_csr(evolve(csr1, d2))
        assert np.array_equal(dasp_spmv(got[0], x), dasp_spmv(ref, x))

    def test_non_contiguous_version_rejected(self, matrix, rng, tmp_path):
        from repro._util import ValidationError

        store = PlanStore(tmp_path)
        fp = matrix_fingerprint(matrix)
        plan = DASPMatrix.from_csr(matrix)
        d = random_delta(matrix, rng, n_entries=3)
        store.put_delta(fp, 1, d, seed_plan=plan)
        with pytest.raises(ValidationError):
            store.put_delta(fp, 5, random_delta(evolve(matrix, d), rng,
                                                n_entries=3))

    def test_sharded_plan_delta_roundtrip(self, rng, tmp_path):
        """Acceptance: bitwise equivalence holds for sharded plans that
        go through the store's persist/replay cycle."""
        csr = random_csr(120, 500, rng, row_len_sampler=ROW_PROFILES["skewed"])
        store = PlanStore(tmp_path)
        plan = build_sharded_plan(csr, 3)
        fp = matrix_fingerprint(csr)
        cur = csr
        for i in range(1, 4):
            d = random_delta(cur, rng, structural=i % 2 == 0, n_entries=8)
            seed = plan if i == 1 else None  # the *pre*-update plan seeds v0
            work = (clone_for_patch(plan) if isinstance(d, ValueUpdate)
                    else plan)
            plan, _ = apply_update(work, d, auto_compact=False)
            store.put_delta(fp, i, d, seed_plan=seed)
            cur = evolve(cur, d)
        # seed published at v0 then deltas replayed on load
        got = store.load(fp, gate=False)
        assert got is not None
        loaded = got[0]
        assert hasattr(loaded, "shards")
        x = rng.standard_normal(500)
        ref = build_sharded_plan(cur, 3)
        y_ref = np.concatenate([dasp_spmv(s.dasp, x) for s in ref.shards])
        y_got = np.concatenate([dasp_spmv(s.dasp, x) for s in loaded.shards])
        assert np.array_equal(y_got, y_ref)
