"""Tests for the x-gather traffic / bandwidth-ramp model."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.gpu import A100, effective_bandwidth, sector_counts, x_traffic_bytes
from tests.conftest import random_csr


def csr_with_cols(cols_per_row, n):
    """Build a CSR matrix with explicit column lists per row."""
    indptr = np.cumsum([0] + [len(c) for c in cols_per_row])
    indices = np.concatenate([np.asarray(c, dtype=np.int64) for c in cols_per_row]) \
        if indptr[-1] else np.zeros(0, np.int64)
    return CSRMatrix((len(cols_per_row), n), indptr, indices,
                     np.ones(int(indptr[-1])))


class TestSectorCounts:
    def test_dense_row_one_sector_fp64(self):
        # 4 consecutive FP64 columns share one 32-byte sector
        csr = csr_with_cols([[0, 1, 2, 3]], 8)
        per_row, uniq = sector_counts(csr, 8)
        assert per_row == 1 and uniq == 1

    def test_scattered_row(self):
        csr = csr_with_cols([[0, 4, 8, 12]], 16)
        per_row, uniq = sector_counts(csr, 8)
        assert per_row == 4 and uniq == 4

    def test_fp16_wider_sectors(self):
        # 16 consecutive FP16 values share one sector
        csr = csr_with_cols([list(range(16))], 32)
        per_row, uniq = sector_counts(csr, 2)
        assert per_row == 1

    def test_cross_row_reuse_counted_once_globally(self):
        csr = csr_with_cols([[0], [0], [0]], 4)
        per_row, uniq = sector_counts(csr, 8)
        assert per_row == 3 and uniq == 1

    def test_empty(self):
        assert sector_counts(CSRMatrix.empty((3, 3)), 8) == (0, 0)


class TestXTraffic:
    def test_zero_for_empty(self):
        assert x_traffic_bytes(CSRMatrix.empty((3, 3)), 8, A100) == 0.0

    def test_reuse_cheaper_than_scatter(self, rng):
        dense_cols = csr_with_cols([[0, 1, 2, 3]] * 64, 8)
        scattered = csr_with_cols(
            [[int(c) for c in rng.choice(4096, 4, replace=False)]
             for _ in range(64)], 4096)
        assert x_traffic_bytes(dense_cols, 8, A100) < x_traffic_bytes(scattered, 8, A100)

    def test_bypass_reduces_traffic(self, rng):
        csr = random_csr(200, 5000, rng)
        with_bypass = x_traffic_bytes(csr, 8, A100, bypass_l1=True)
        without = x_traffic_bytes(csr, 8, A100, bypass_l1=False)
        assert with_bypass <= without

    def test_monotone_in_nnz(self, rng):
        small = random_csr(50, 1000, rng)
        big = random_csr(500, 1000, rng)
        if big.nnz > small.nnz * 2:
            assert x_traffic_bytes(big, 8, A100) > x_traffic_bytes(small, 8, A100)

    def test_accepts_device_name(self, rng):
        csr = random_csr(10, 10, rng)
        assert x_traffic_bytes(csr, 8, "A100") == x_traffic_bytes(csr, 8, A100)


class TestEffectiveBandwidth:
    def test_ramp_floor(self):
        assert effective_bandwidth(A100, 1) >= 0.14 * A100.measured_bw

    def test_saturates(self):
        assert effective_bandwidth(A100, 10_000_000) == pytest.approx(A100.measured_bw)

    def test_monotone(self):
        bws = [effective_bandwidth(A100, t) for t in (10, 1000, 50_000, 500_000)]
        assert bws == sorted(bws)

    def test_zero_threads_safe(self):
        assert effective_bandwidth(A100, 0) > 0
