"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.matrices import (
    GENERATORS,
    banded,
    circuit,
    dense_row_block,
    fem_blocked,
    grid2d,
    kronecker,
    lp_matrix,
    power_law,
    qcd_regular,
    quantum_chem,
    rect_long_rows,
    rect_short_rows,
    uniform_random,
)


ALL_BUILDERS = [
    ("fem", lambda s: fem_blocked(300, 30, seed=s)),
    ("banded", lambda s: banded(300, 10, seed=s)),
    ("power_law", lambda s: power_law(400, 5, seed=s)),
    ("kron", lambda s: kronecker(8, 8, seed=s)),
    ("circuit", lambda s: circuit(400, 5, seed=s)),
    ("grid", lambda s: grid2d(20, 20, seed=s)),
    ("quantum", lambda s: quantum_chem(200, 40, seed=s)),
    ("rect_long", lambda s: rect_long_rows(20, 500, 100, seed=s)),
    ("rect_short", lambda s: rect_short_rows(300, 100, seed=s)),
    ("lp", lambda s: lp_matrix(100, 800, 40, seed=s)),
    ("uniform", lambda s: uniform_random(300, 300, 6, seed=s)),
    ("dense_rows", lambda s: dense_row_block(300, dense_rows=4,
                                             dense_len=100, seed=s)),
    ("qcd", lambda s: qcd_regular(200, 39, seed=s)),
]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS)
class TestAllGenerators:
    def test_valid_csr(self, name, builder):
        csr = builder(1)
        csr.validate()
        assert csr.nnz > 0

    def test_deterministic(self, name, builder):
        a, b = builder(7), builder(7)
        assert a.shape == b.shape and a.nnz == b.nnz
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)

    def test_seed_changes_matrix(self, name, builder):
        a, b = builder(1), builder(2)
        same_structure = (a.nnz == b.nnz
                          and np.array_equal(a.indices, b.indices))
        same_values = (a.nnz == b.nnz and np.array_equal(a.data, b.data))
        # a structured stencil (qcd) may keep its pattern across seeds,
        # but values must change
        assert not (same_structure and same_values)

    def test_no_duplicate_entries(self, name, builder):
        csr = builder(3)
        rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64),
                         csr.row_lengths())
        keys = rows * csr.shape[1] + csr.indices
        assert np.unique(keys).size == keys.size

    def test_values_fp16_safe(self, name, builder):
        """Values must survive an FP16 round trip (no over/underflow)."""
        csr = builder(4)
        as16 = csr.data.astype(np.float16)
        assert np.all(np.isfinite(as16))
        assert np.all(as16[csr.data != 0] != 0)


class TestProfiles:
    def test_grid_no_diagonal_all_short(self):
        csr = grid2d(30, 30, diagonal=False, drop=0.0)
        assert csr.row_lengths().max() <= 4

    def test_grid_with_diagonal_never_empty(self):
        csr = grid2d(15, 15, drop=0.3)
        assert csr.row_lengths().min() >= 1

    def test_qcd_rows_regular(self):
        csr = qcd_regular(100, 39)
        lens = csr.row_lengths()
        assert lens.min() >= 30  # modulo collisions can trim a little

    def test_power_law_skew(self):
        csr = power_law(2000, 4, alpha=1.3, seed=0)
        lens = csr.row_lengths()
        assert lens.max() > 20 * max(np.median(lens), 1)

    def test_circuit_dense_rows_present(self):
        csr = circuit(1000, 4, n_dense_rows=2, dense_frac=0.3, seed=0)
        assert csr.row_lengths().max() > 100

    def test_rect_shapes(self):
        assert rect_long_rows(10, 500, 50).shape == (10, 500)
        assert rect_short_rows(200, 50).shape == (200, 50)

    def test_rect_short_max_len(self):
        csr = rect_short_rows(500, 200, max_len=3, seed=1)
        assert csr.row_lengths().max() <= 3

    def test_fem_empty_rows(self):
        csr = fem_blocked(400, 20, empty_rows=50, seed=0)
        assert np.count_nonzero(csr.row_lengths() == 0) >= 40

    def test_kron_size(self):
        csr = kronecker(7, 4, seed=0)
        assert csr.shape == (128, 128)

    def test_registry_complete(self):
        assert set(GENERATORS) >= {
            "fem_blocked", "power_law", "kronecker", "circuit", "grid2d",
            "quantum_chem", "rect_long_rows", "rect_short_rows",
            "lp_matrix", "uniform_random", "banded", "qcd_regular",
            "dense_row_block"}
