"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.formats import write_matrix_market
from tests.conftest import random_csr


class TestList:
    def test_lists_all_named(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pwtk" in out and "bibd_20_10" in out
        assert out.count("|") > 27 * 5  # a real table


class TestAnalyze:
    def test_named_matrix(self, capsys):
        assert main(["analyze", "scircuit"]) == 0
        out = capsys.readouterr().out
        assert "DASP" in out and "category" in out
        assert "CSR5" in out

    def test_mtx_file(self, tmp_path, capsys, rng):
        csr = random_csr(30, 30, rng)
        path = tmp_path / "m.mtx"
        write_matrix_market(csr, path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "nnz=" in out

    def test_npz_file(self, tmp_path, capsys, rng):
        """An existing .npz path must route to matrices.io, not the
        MatrixMarket parser."""
        from repro.matrices.io import save_csr

        csr = random_csr(30, 30, rng)
        path = tmp_path / "m.npz"
        save_csr(path, csr)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"nnz={csr.nnz:,}" in out

    def test_unknown_extension_errors(self, tmp_path):
        from repro import ReproError

        path = tmp_path / "m.bin"
        path.write_bytes(b"\x00\x01")
        with pytest.raises(ReproError, match="unsupported extension"):
            main(["analyze", str(path)])

    def test_fp16_marks_unsupported(self, capsys):
        assert main(["analyze", "mc2depi", "--dtype", "float16"]) == 0
        out = capsys.readouterr().out
        assert "unsupported dtype" in out  # CSR5 & friends skip FP16

    def test_h800_device(self, capsys):
        assert main(["analyze", "scircuit", "--device", "H800"]) == 0
        assert "H800" in capsys.readouterr().out


class TestSpmv:
    def test_runs_and_verifies(self, capsys):
        assert main(["spmv", "mc2depi"]) == 0
        out = capsys.readouterr().out
        assert "checksum" in out and "GFlops" in out

    def test_fp16(self, capsys):
        assert main(["spmv", "mc2depi", "--dtype", "float16"]) == 0

    def test_seed_changes_checksum(self, capsys):
        main(["spmv", "scircuit", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["spmv", "scircuit", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1.splitlines()[0] != out2.splitlines()[0]


class TestSpmm:
    def test_strategy_table_and_bitwise_check(self, capsys):
        assert main(["spmm", "scircuit", "--k", "8", "64"]) == 0
        out = capsys.readouterr().out
        assert "| strategy |" in out
        assert "looped" in out
        assert "bitwise identical" in out

    def test_store_publishes_reorder_aux(self, tmp_path, capsys):
        from repro.store import PlanStore, fingerprint_csr

        assert main(["spmm", "mac_econ_fwd500", "--k", "8", "128",
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "published" in out
        from repro.matrices import load as load_matrix

        fp = fingerprint_csr(load_matrix("mac_econ_fwd500"))
        aux = PlanStore(tmp_path).load_aux(fp)
        if "reorder permutation" in out:
            perm = aux["spmm.reorder_perm"]
            assert np.array_equal(np.sort(perm), np.arange(perm.size))
            inv = aux["spmm.reorder_inv"]
            assert np.array_equal(perm[inv], np.arange(perm.size))
        else:  # tuner kept natural order: plan published without aux
            assert aux == {}

    def test_bench_json(self, tmp_path, capsys):
        assert main(["spmm", "scircuit", "--k", "8", "32", "--bench-json",
                     "--bench-dir", str(tmp_path)]) == 0
        import json

        records = json.loads((tmp_path / "BENCH_spmm.json").read_text())
        assert len(records) == 1
        sweep = records[0]["sweep"]
        assert [row["k"] for row in sweep] == [8, 32]
        assert all(row["speedup"] >= 1.0 for row in sweep)

    def test_no_reorder_flag(self, capsys):
        assert main(["spmm", "mac_econ_fwd500", "--k", "8", "32",
                     "--no-reorder"]) == 0
        assert "reordered" not in capsys.readouterr().out


class TestBench:
    def test_mini_sweep(self, capsys):
        assert main(["bench", "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "vs CSR5" in out and "geomean" in out

    def test_fp16_sweep(self, capsys):
        assert main(["bench", "--count", "3", "--dtype", "float16"]) == 0
        out = capsys.readouterr().out
        assert "cuSPARSE-CSR" in out
        assert "CSR5" not in out  # FP16 excludes CSR5


class TestServeSim:
    def test_prints_summary(self, capsys):
        assert main(["serve-sim", "--requests", "200",
                     "--matrices", "2"]) == 0
        out = capsys.readouterr().out
        assert "throughput (kernel time)" in out
        assert "batch-size histogram" in out
        assert "cache hit rate" in out
        assert "latency p50 / p95 / p99" in out

    def test_compare_mode(self, capsys):
        assert main(["serve-sim", "--requests", "200", "--matrices", "2",
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "batched vs request-at-a-time throughput" in out

    def test_unbatched_width(self, capsys):
        assert main(["serve-sim", "--requests", "120", "--matrices", "2",
                     "--max-batch", "1"]) == 0
        out = capsys.readouterr().out
        assert "(1.00)" in out  # every batch a singleton


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_matrix_raises(self):
        with pytest.raises(KeyError):
            main(["analyze", "not_a_matrix"])


class TestConvert:
    def test_mtx_to_npz_roundtrip(self, tmp_path, capsys, rng):
        from repro.formats import write_matrix_market
        from repro.matrices.io import load_csr
        import numpy as np

        csr = random_csr(20, 25, rng)
        mtx = tmp_path / "m.mtx"
        npz = tmp_path / "m.npz"
        write_matrix_market(csr, mtx)
        assert main(["convert", str(mtx), str(npz)]) == 0
        back = load_csr(npz)
        assert np.allclose(back.to_dense(), csr.to_dense())

    def test_npz_to_mtx(self, tmp_path, rng):
        from repro.formats import read_matrix_market
        from repro.matrices.io import save_csr
        import numpy as np

        csr = random_csr(10, 10, rng)
        npz = tmp_path / "m.npz"
        mtx = tmp_path / "out.mtx"
        save_csr(npz, csr)
        assert main(["convert", str(npz), str(mtx)]) == 0
        assert np.allclose(read_matrix_market(str(mtx)).to_dense(),
                           csr.to_dense())

    def test_bad_extension(self, tmp_path):
        assert main(["convert", str(tmp_path / "a.xyz"),
                     str(tmp_path / "b.npz")]) == 2


class TestServeSimTrace:
    def test_trace_prints_attribution(self, capsys):
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "device-time attribution" in out
        assert "regular_mma" in out and "irregular_csr" in out
        assert "coverage:" in out
        assert "batch" in out  # at least one span tree

    def test_trace_json_validates_against_schema(self, tmp_path, capsys):
        import json
        from pathlib import Path

        jsonschema = pytest.importorskip("jsonschema")
        out_path = tmp_path / "trace.json"
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--trace-json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        schema_path = (Path(__file__).resolve().parent.parent
                       / "schemas" / "serve_trace.schema.json")
        jsonschema.validate(doc, json.loads(schema_path.read_text()))
        assert doc["attribution"]["coverage"] >= 0.95

    def test_trace_prom_output(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--trace-prom", str(out_path)]) == 0
        text = out_path.read_text()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_latency_seconds_bucket" in text

    def test_compare_with_trace(self, capsys):
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--compare", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "batched vs request-at-a-time throughput" in out
        assert "device-time attribution" in out


class TestStatsCommand:
    def test_table_format(self, capsys):
        assert main(["stats", "--requests", "150", "--matrices", "2"]) == 0
        out = capsys.readouterr().out
        assert "throughput (kernel time)" in out
        assert "device-time attribution" in out
        assert "coverage:" in out

    def test_json_format(self, capsys):
        import json

        assert main(["stats", "--requests", "150", "--matrices", "2",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        names = {m["name"] for m in doc["metrics"]}
        assert "serve.requests_total" in names
        assert doc["attribution"]["coverage"] >= 0.95

    def test_prometheus_format(self, capsys):
        assert main(["stats", "--requests", "150", "--matrices", "2",
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# TYPE")
        assert "serve_requests_total" in out


class TestPlanCommand:
    """`repro plan build|inspect|verify|warm|gc` — the store CLI."""

    def _build(self, tmp_path, *extra):
        store = tmp_path / "store"
        rc = main(["plan", "build", "scircuit", "cop20k_A",
                   "--store", str(store), *extra])
        return rc, store

    def test_build_and_inspect(self, tmp_path, capsys):
        rc, store = self._build(tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled load" in out and ".daspz" in out
        assert len(list((store / "plans").glob("*.daspz"))) == 2
        assert main(["plan", "inspect", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "dasp" in out and "float64" in out

    def test_build_sharded(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["plan", "build", "mc2depi", "--store", str(store),
                     "--shards", "4"]) == 0
        capsys.readouterr()
        assert main(["plan", "inspect", "--store", str(store)]) == 0
        assert "sharded(4)" in capsys.readouterr().out

    def test_verify_ok_and_corrupt(self, tmp_path, capsys):
        rc, store = self._build(tmp_path)
        assert main(["plan", "verify", "--store", str(store)]) == 0
        assert "2/2 artifacts verified" in capsys.readouterr().out
        # corrupt one artifact: verify must fail with exit code 1
        victim = sorted((store / "plans").glob("*.daspz"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        assert main(["plan", "verify", "--store", str(store)]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "1/2 artifacts verified" in captured.out

    def test_warm(self, tmp_path, capsys):
        rc, store = self._build(tmp_path)
        assert main(["plan", "warm", "scircuit", "cop20k_A",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "warmed in" in out and "2 loaded, 0 missing" in out
        # a matrix that was never built reports missing -> exit 1
        assert main(["plan", "warm", "mc2depi",
                     "--store", str(store)]) == 1
        assert "not in store" in capsys.readouterr().out

    def test_gc(self, tmp_path, capsys):
        rc, store = self._build(tmp_path)
        assert main(["plan", "gc", "--store", str(store),
                     "--capacity-mb", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 artifact(s)" in out
        assert list((store / "plans").glob("*.daspz")) == []

    def test_serve_sim_with_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--store", str(store)]) == 0
        assert "store load / write / spill" in capsys.readouterr().out
        assert main(["serve-sim", "--requests", "150", "--matrices", "2",
                     "--store", str(store), "--warm-start"]) == 0
        out = capsys.readouterr().out
        assert "| store load / write / spill | 2 / 0 / 0 |" in out


class TestClusterSim:
    def test_prints_cluster_and_replica_tables(self, capsys):
        assert main(["cluster-sim", "--replicas", "2", "--requests", "600",
                     "--synthetic", "3", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "| replicas | 2 |" in out
        assert "failovers" in out
        assert "| r0 |" in out and "| r1 |" in out

    def test_single_replica_matches_serve_driver(self, capsys):
        """N=1 cluster-sim reports the single driver's numbers."""
        from repro.cluster import ClusterConfig, run_cluster_workload
        from repro.matrices import synthetic_collection
        from repro.serve import WorkloadConfig, run_workload

        kw = dict(n_requests=600, seed=3,
                  entries=synthetic_collection(3, seed=3))
        single = run_workload(WorkloadConfig(**kw))
        assert main(["cluster-sim", "--replicas", "1", "--requests", "600",
                     "--synthetic", "3", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert f"| completed | {single.n_completed:,} |" in out
        assert f"| makespan | {single.duration_s:.4f} s |" in out

    def test_fail_replica_and_trace(self, capsys):
        assert main(["cluster-sim", "--replicas", "3", "--requests", "900",
                     "--synthetic", "3", "--seed", "3", "--fail-replica",
                     "1", "--deadline-us", "20000", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "attributed device ms" in out

    def test_bench_json_trajectory(self, tmp_path, capsys):
        for _ in range(2):
            assert main(["cluster-sim", "--replicas", "2", "--requests",
                         "400", "--synthetic", "3", "--seed", "3",
                         "--bench-json", "--bench-dir",
                         str(tmp_path)]) == 0
        import json

        records = json.loads((tmp_path / "BENCH_cluster.json").read_text())
        assert len(records) == 2
        for rec in records:
            assert rec["replicas"] == 2
            assert rec["throughput_rps"] > 0
            assert 0.0 <= rec["in_deadline_fraction"] <= 1.0
            assert rec["p50_latency_s"] <= rec["p99_latency_s"]
            assert "wall_s" in rec and "recorded_unix" in rec
