"""Tests for KernelEvents / PreprocessEvents / TimeParts accounting."""

import pytest

from repro.gpu import KernelEvents, TimeParts


class TestKernelEvents:
    def test_bytes_totals(self):
        ev = KernelEvents(bytes_val=10, bytes_idx=5, bytes_ptr=1,
                          bytes_x=3, bytes_y=2)
        assert ev.bytes_stream == 16
        assert ev.bytes_total == 21

    def test_flops_total(self):
        ev = KernelEvents(flops_cuda=3, flops_mma=4)
        assert ev.flops_total == 7

    def test_imbalance_floor(self):
        assert KernelEvents(imbalance=0.5).imbalance == 1.0

    def test_mem_efficiency_validated(self):
        with pytest.raises(ValueError):
            KernelEvents(mem_efficiency=0.0)
        with pytest.raises(ValueError):
            KernelEvents(mem_efficiency=1.5)

    def test_combine_adds_traffic(self):
        a = KernelEvents(bytes_val=10, flops_cuda=2, kernel_launches=1)
        b = KernelEvents(bytes_val=20, flops_mma=4, kernel_launches=2)
        c = a.combine(b)
        assert c.bytes_val == 30
        assert c.flops_total == 6
        assert c.kernel_launches == 3

    def test_combine_weights_imbalance_by_traffic(self):
        heavy = KernelEvents(bytes_val=1e9, imbalance=1.0)
        light = KernelEvents(bytes_val=1.0, imbalance=10.0)
        merged = heavy.combine(light)
        assert merged.imbalance == pytest.approx(1.0, abs=1e-4)

    def test_combine_takes_max_serial(self):
        a = KernelEvents(serial_iters=5)
        b = KernelEvents(serial_iters=100)
        assert a.combine(b).serial_iters == 100

    def test_combine_weights_mem_efficiency(self):
        a = KernelEvents(bytes_val=100, mem_efficiency=1.0)
        b = KernelEvents(bytes_val=100, mem_efficiency=0.5)
        assert 0.5 < a.combine(b).mem_efficiency < 1.0


class TestTimeParts:
    def test_total(self):
        tp = TimeParts(random_access=1, compute=2, misc=3, launch=4)
        assert tp.total == 10

    def test_fractions_fold_launch_into_misc(self):
        tp = TimeParts(random_access=1, compute=1, misc=1, launch=1)
        fr = tp.fractions()
        assert fr["misc"] == pytest.approx(0.5)

    def test_zero_total_fractions(self):
        fr = TimeParts().fractions()
        assert fr["misc"] == 1.0
