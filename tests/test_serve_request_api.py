"""Tests for the unified typed request API (`repro.serve.request`).

Covers the api_redesign contract: `SpMVRequest` / `SpMMRequest` objects
accepted by both `SpMVServer.submit` and `Router.submit`, the
deprecated positional form routing identically one release behind a
`DeprecationWarning`, SpMM end-to-end through server and router, and
the k=1-through-the-SpMM-path regression (events parity and serving
behavior unchanged).
"""

import warnings

import numpy as np
import pytest

from repro.cluster import Router
from repro.core import DASPMatrix, DASPMethod
from repro.core.spmm import spmm_events
from repro.serve import MMA_N, SpMMRequest, SpMVRequest, SpMVServer
from tests.conftest import random_csr


@pytest.fixture
def server():
    with SpMVServer(max_batch=4, flush_timeout_s=0.01, workers=2) as s:
        yield s


class TestRequestObjects:
    def test_spmv_request_width_one(self, rng):
        req = SpMVRequest("fp", rng.uniform(-1, 1, 8))
        assert req.width == 1
        assert req.priority == "interactive"
        assert req.deadline_us is None and req.shards is None

    def test_spmm_request_width_is_k(self, rng):
        req = SpMMRequest("fp", rng.uniform(-1, 1, (8, 24)),
                          priority="batch")
        assert req.width == 24
        assert req.priority == "batch"

    def test_public_fields_keyword_only(self, rng):
        with pytest.raises(TypeError):
            SpMVRequest("fp", rng.uniform(-1, 1, 4), 1000.0)

    def test_server_keeps_submitted_object_pristine(self, server, rng):
        csr = random_csr(20, 30, rng)
        fp = server.register(csr)
        req = SpMVRequest(fp, rng.uniform(-1, 1, 30), deadline_us=1e9)
        fut = server.submit(req)
        server.flush()
        fut.result(timeout=5.0)
        # the server stamps bookkeeping on a copy, never on the
        # caller's object (hedging re-issues the same request object)
        assert req.req_id == -1
        assert req.result is None and np.isnan(req.arrival_s)


class TestDeprecatedPositionalForm:
    def test_server_warns_and_routes_identically(self, server, rng):
        csr = random_csr(30, 40, rng)
        fp = server.register(csr)
        x = rng.uniform(-1, 1, 40)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = server.submit(fp, x)
        new = server.submit(SpMVRequest(fp, x))
        server.flush()
        assert np.array_equal(old.result(5.0), new.result(5.0))

    def test_server_deadline_s_maps_to_deadline_us(self, server, rng):
        csr = random_csr(10, 12, rng)
        fp = server.register(csr)
        with pytest.warns(DeprecationWarning):
            fut = server.submit(fp, rng.uniform(-1, 1, 12), deadline_s=10.0)
        server.flush()
        assert fut.result(5.0).shape == (10,)

    def test_router_warns_and_routes_identically(self, rng):
        servers = [SpMVServer(workers=1, queue_depth=16) for _ in range(2)]
        with Router(servers, seed=1) as router:
            csr = random_csr(24, 24, rng)
            fp = router.register(csr)
            x = rng.uniform(-1, 1, 24)
            with pytest.warns(DeprecationWarning, match="deprecated"):
                old = router.submit(fp, x)
            new = router.submit(SpMVRequest(fp, x))
            for s in router.servers.values():
                s.flush()
            assert np.array_equal(old.result(10.0), new.result(10.0))

    def test_new_form_rejects_extra_positional_kwargs(self, server, rng):
        csr = random_csr(10, 12, rng)
        fp = server.register(csr)
        req = SpMVRequest(fp, rng.uniform(-1, 1, 12))
        with pytest.raises(Exception):
            server.submit(req, deadline_s=1.0)

    def test_new_form_emits_no_warning(self, server, rng):
        csr = random_csr(10, 12, rng)
        fp = server.register(csr)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fut = server.submit(SpMVRequest(fp, rng.uniform(-1, 1, 12)))
        server.flush()
        assert fut.result(5.0).shape == (10,)


class TestSpMMServing:
    @pytest.mark.parametrize("k", [2, 8, 24, 100])
    def test_server_spmm_end_to_end(self, server, rng, k):
        csr = random_csr(40, 60, rng)
        fp = server.register(csr)
        X = rng.uniform(-1, 1, (60, k))
        fut = server.submit(SpMMRequest(fp, X))
        Y = fut.result(timeout=10.0)
        assert Y.shape == (40, k)
        # bitwise the plan-level column-wise reference
        plan = DASPMatrix.from_csr(csr)
        from repro.core import dasp_spmv
        ref = np.stack([dasp_spmv(plan, X[:, j]) for j in range(k)], axis=1)
        assert np.array_equal(Y, ref)

    def test_spmm_bypasses_batcher(self, server, rng):
        csr = random_csr(30, 50, rng)
        fp = server.register(csr)
        X = rng.uniform(-1, 1, (50, 16))
        fut = server.submit(SpMMRequest(fp, X))
        # no flush needed: the block goes straight to the scheduler
        assert fut.result(timeout=10.0).shape == (30, 16)
        assert server.stats.batch_hist.get(16, 0) >= 1

    def test_large_k_strategy_counter(self, rng):
        with SpMVServer(workers=1) as s:
            csr = random_csr(60, 80, rng)
            fp = s.register(csr)
            X = rng.uniform(-1, 1, (80, 64))
            s.submit(SpMMRequest(fp, X)).result(timeout=10.0)
            total = s.obs.registry.family_total("serve.spmm_large_total")
        assert total == 1

    def test_router_spmm_end_to_end(self, rng):
        servers = [SpMVServer(workers=1, queue_depth=16) for _ in range(2)]
        with Router(servers, seed=1) as router:
            csr = random_csr(32, 48, rng)
            fp = router.register(csr)
            X = rng.uniform(-1, 1, (48, 40))
            Y = router.submit(SpMMRequest(fp, X)).result(timeout=15.0)
        plan = DASPMatrix.from_csr(csr)
        from repro.core import dasp_spmv
        ref = np.stack([dasp_spmv(plan, X[:, j]) for j in range(40)], axis=1)
        assert np.array_equal(Y, ref)

    def test_shards_hint_on_request(self, rng):
        with SpMVServer(workers=1) as s:
            csr = random_csr(64, 64, rng)
            fp = s.register(csr)
            X = rng.uniform(-1, 1, (64, 16))
            fut = s.submit(SpMMRequest(fp, X, shards=2))
            assert fut.result(timeout=10.0).shape == (64, 16)
        assert s.stats.n_completed >= 1

    def test_bad_block_shape_rejected(self, server, rng):
        csr = random_csr(20, 30, rng)
        fp = server.register(csr)
        from repro._util import ValidationError
        with pytest.raises(ValidationError):
            server.submit(SpMMRequest(fp, rng.uniform(-1, 1, (31, 4))))


class TestK1Regression:
    """Satellite 2: k=1 rides the SpMM path with identical events."""

    def test_spmm_events_k1_matches_spmv_events(self, rng):
        csr = random_csr(96, 300, rng)
        plan = DASPMatrix.from_csr(csr)
        ev_spmm = spmm_events(plan, "A100", 1)
        ev_spmv = DASPMethod().events(plan, "A100")
        assert ev_spmm == ev_spmv

    def test_single_request_still_correct_and_counted(self, rng):
        csr = random_csr(40, 60, rng)
        with SpMVServer(max_batch=1, flush_timeout_s=0.005) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 60)
            y = s.submit(SpMVRequest(fp, x)).result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)
        assert s.stats.n_completed == 1
        assert s.stats.batch_hist.get(1, 0) == 1
        # k=1 must never take the large-k strategies
        assert 1 <= MMA_N
