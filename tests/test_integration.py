"""End-to-end integration tests across subsystems."""

import io

import numpy as np
import pytest

from repro import CSRMatrix, DASPMatrix, dasp_spmv
from repro.analysis import speedup_summary
from repro.bench import run_comparison
from repro.core import DASPMethod
from repro.formats import read_matrix_market, write_matrix_market
from repro.matrices import representative_suite, suite_by_name, synthetic_collection
from repro.precision import cast_matrix_fp16, relative_l2_error


class TestMatrixMarketToDASP:
    """File -> CSR -> DASP -> SpMV pipeline, like a downstream user."""

    def test_full_pipeline(self, rng):
        csr = suite_by_name("cant").matrix()
        buf = io.StringIO()
        write_matrix_market(csr, buf)
        loaded = read_matrix_market(buf.getvalue()).to_csr()
        x = rng.standard_normal(loaded.shape[1])
        y = dasp_spmv(loaded, x)
        assert np.allclose(y, csr.matvec(x), rtol=1e-9)


class TestSuiteCorrectness:
    @pytest.mark.parametrize("name", ["mc2depi", "dc2", "conf5_4-8x8-10",
                                      "webbase-1M", "mip1"])
    def test_dasp_on_representative(self, name, rng):
        csr = suite_by_name(name).matrix()
        x = rng.standard_normal(csr.shape[1])
        assert np.allclose(dasp_spmv(csr, x), csr.matvec(x), rtol=1e-9)


class TestIterativeSolverUsage:
    def test_power_iteration_converges(self, rng):
        """Repeated DASP SpMV inside a power iteration must match the
        dominant eigenvalue from NumPy on a small symmetric matrix."""
        n = 60
        d = rng.standard_normal((n, n))
        d = (d + d.T) / 2
        d[np.abs(d) < 1.2] = 0.0
        np.fill_diagonal(d, 4.0)
        csr = CSRMatrix.from_dense(d)
        dasp = DASPMatrix.from_csr(csr)
        v = rng.standard_normal(n)
        for _ in range(200):
            v = dasp_spmv(dasp, v)
            v /= np.linalg.norm(v)
        lam = v @ dasp_spmv(dasp, v)
        assert lam == pytest.approx(np.max(np.abs(np.linalg.eigvalsh(d))),
                                    rel=1e-4)

    def test_jacobi_iteration(self, rng):
        """Solve a diagonally dominant system with Jacobi using DASP for
        the off-diagonal product."""
        n = 80
        d = rng.uniform(-1, 1, (n, n))
        d[rng.random((n, n)) < 0.8] = 0.0
        np.fill_diagonal(d, 0.0)
        diag = np.abs(d).sum(axis=1) + 1.0
        full = d + np.diag(diag)
        b = rng.standard_normal(n)
        off = DASPMatrix.from_csr(CSRMatrix.from_dense(d))
        x = np.zeros(n)
        for _ in range(100):
            x = (b - dasp_spmv(off, x)) / diag
        assert np.allclose(full @ x, b, atol=1e-8)


class TestMixedPrecisionPipeline:
    def test_fp16_matrix_fp32_result(self, rng):
        csr = suite_by_name("mc2depi").matrix()
        half = cast_matrix_fp16(csr)
        x = rng.uniform(-1, 1, csr.shape[1]).astype(np.float16)
        y16 = dasp_spmv(half, x)
        y64 = csr.matvec(x.astype(np.float64))
        assert relative_l2_error(y16, y64) < 1e-2


class TestComparisonPipeline:
    def test_small_sweep_with_speedups(self, rng):
        entries = synthetic_collection(6, seed=99, min_nnz=3000,
                                       max_nnz=20000)
        res = run_comparison(entries, device="A100",
                             check_correctness=True)
        s = speedup_summary(res.times["DASP"], res.times["CSR5"], "CSR5")
        assert s.total == 6
        assert s.geomean > 0

    def test_h800_differs_from_a100(self, rng):
        entries = synthetic_collection(3, seed=5, min_nnz=5000,
                                       max_nnz=20000)
        a = run_comparison(entries, device="A100", methods=("DASP",))
        h = run_comparison(entries, device="H800", methods=("DASP",))
        for name in a.times["DASP"]:
            assert a.times["DASP"][name] != h.times["DASP"][name]


class TestMethodMeasurement:
    def test_measure_includes_parts(self):
        csr = suite_by_name("scircuit").matrix()
        meas = DASPMethod().measure(csr, "A100", matrix_name="scircuit")
        assert meas.parts.total == pytest.approx(meas.time_s)
        assert meas.matrix == "scircuit"
        assert meas.device == "A100-PCIe-40GB"
