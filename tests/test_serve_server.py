"""End-to-end tests for `SpMVServer` (real threads, futures API)."""

import numpy as np
import pytest

from repro._util import ReproError, ValidationError
from repro.serve import QueueFullError, SpMVServer
from tests.conftest import random_csr


@pytest.fixture
def server():
    with SpMVServer(max_batch=4, flush_timeout_s=0.01, workers=2) as s:
        yield s


class TestServing:
    def test_single_request_correct(self, server, rng):
        csr = random_csr(40, 60, rng)
        fp = server.register(csr)
        x = rng.uniform(-1, 1, 60)
        fut = server.submit(fp, x)
        server.flush()
        y = fut.result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)

    def test_full_batch_scatters_each_result(self, server, rng):
        csr = random_csr(30, 50, rng)
        fp = server.register(csr)
        xs = [rng.uniform(-1, 1, 50) for _ in range(4)]
        futs = [server.submit(fp, x) for x in xs]  # max_batch=4 -> flush
        for x, fut in zip(xs, futs):
            assert np.allclose(fut.result(timeout=5.0), csr.matvec(x),
                               rtol=1e-10)
        assert server.stats.batch_hist.get(4, 0) >= 1

    def test_multiple_matrices_routed(self, server, rng):
        a = random_csr(20, 30, rng)
        b = random_csr(25, 30, rng)
        fa, fb = server.register(a), server.register(b)
        x = rng.uniform(-1, 1, 30)
        ya = server.submit(fa, x)
        yb = server.submit(fb, x)
        server.flush()
        assert ya.result(5.0).shape == (20,)
        assert yb.result(5.0).shape == (25,)

    def test_plan_cached_across_batches(self, server, rng):
        csr = random_csr(30, 40, rng)
        fp = server.register(csr)
        for _ in range(3):
            fut = server.submit(fp, rng.uniform(-1, 1, 40))
            server.flush()
            fut.result(timeout=5.0)
        snap = server.registry.snapshot()
        assert snap["misses"] == 1 and snap["hits"] == 2

    def test_stats_populated_on_close(self, rng):
        csr = random_csr(30, 40, rng)
        with SpMVServer(max_batch=2, flush_timeout_s=0.005) as s:
            fp = s.register(csr)
            futs = [s.submit(fp, rng.uniform(-1, 1, 40)) for _ in range(4)]
            s.drain(timeout=5.0)
            for f in futs:
                f.result(timeout=5.0)
        assert s.stats.n_completed == 4
        assert s.stats.device_busy_s > 0
        assert s.stats.cache_misses == 1
        assert s.stats.mma_utilization > 0
        assert len(s.stats.latencies_s) == 4

    def test_timeout_flush_completes_partial(self, rng):
        csr = random_csr(20, 30, rng)
        with SpMVServer(max_batch=8, flush_timeout_s=0.01) as s:
            fp = s.register(csr)
            fut = s.submit(fp, rng.uniform(-1, 1, 30))
            # no explicit flush: the flusher thread must pick it up
            y = fut.result(timeout=5.0)
        assert y.shape == (20,)


class TestValidation:
    def test_unknown_fingerprint(self, server, rng):
        with pytest.raises(ReproError):
            server.submit("deadbeef", rng.uniform(-1, 1, 10))

    def test_wrong_shape(self, server, rng):
        fp = server.register(random_csr(10, 20, rng))
        with pytest.raises(ValidationError):
            server.submit(fp, rng.uniform(-1, 1, 21))

    def test_reject_backpressure_counted(self, rng):
        csr = random_csr(15, 20, rng)
        # max_batch=1: every submit forms a batch; 1-deep queue + slow-ish
        # modeled kernels means concurrent submits can hit QueueFullError
        with SpMVServer(max_batch=1, queue_depth=1, workers=1,
                        policy="reject") as s:
            fp = s.register(csr)
            rejected = 0
            for _ in range(50):
                try:
                    s.submit(fp, rng.uniform(-1, 1, 20))
                except QueueFullError:
                    rejected += 1
            s.drain(timeout=5.0)
        assert s.stats.n_requests == 50
        assert s.stats.n_rejected == rejected
        assert s.stats.n_completed == 50 - rejected
