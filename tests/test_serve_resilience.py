"""Resilience tests for `SpMVServer` — deadlines, retries, breaker,
degradation, validation, and shutdown guarantees (real threads)."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro._util import ReproError, ValidationError
from repro.serve import (
    BreakerConfig,
    DeadlineExceededError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PlanTooLargeError,
    RetryPolicy,
    ServerClosedError,
    SpMVServer,
)
from repro.resilience import NO_RETRY, OPEN
from tests.conftest import random_csr


def make_server(**kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("flush_timeout_s", 0.005)
    kw.setdefault("workers", 2)
    return SpMVServer(**kw)


def injector(*rules, seed=0):
    return FaultInjector(FaultPlan(list(rules), seed=seed))


class TestDeadlines:
    def test_expired_request_fails_fast(self, rng):
        csr = random_csr(30, 40, rng)
        with make_server() as s:
            fp = s.register(csr)
            fut = s.submit(fp, rng.uniform(-1, 1, 40), deadline_s=0.0)
            s.flush()
            with pytest.raises(DeadlineExceededError):
                fut.result(timeout=5.0)
        assert s.stats.n_deadline_exceeded == 1

    def test_default_deadline_applies(self, rng):
        csr = random_csr(30, 40, rng)
        with make_server(default_deadline_s=0.0) as s:
            fp = s.register(csr)
            fut = s.submit(fp, rng.uniform(-1, 1, 40))
            s.flush()
            with pytest.raises(DeadlineExceededError):
                fut.result(timeout=5.0)

    def test_generous_deadline_still_serves(self, rng):
        csr = random_csr(30, 40, rng)
        with make_server() as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 40)
            fut = s.submit(fp, x, deadline_s=30.0)
            s.flush()
            assert np.allclose(fut.result(timeout=5.0), csr.matvec(x),
                               rtol=1e-10)
        assert s.stats.n_deadline_exceeded == 0


class TestRetries:
    def test_transient_fault_retried_to_success(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_error", max_count=1))
        retry = RetryPolicy(max_retries=2, base_delay_s=1e-4, jitter=0.0)
        with make_server(fault_injector=inj, retry=retry) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 40)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)
        assert s.stats.retries >= 1
        assert s.stats.degraded_requests == 0  # retry sufficed

    def test_persistent_fault_degrades_to_fallback(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_error"))  # rate=1, forever
        retry = RetryPolicy(max_retries=1, base_delay_s=1e-4, jitter=0.0)
        with make_server(fault_injector=inj, retry=retry) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 40)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)  # fallback correct
        assert s.stats.degraded_requests >= 1
        assert s.stats.fallback_ratio > 0.0

    def test_fallback_disabled_fails_the_future(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_error"))
        with make_server(fault_injector=inj, retry=NO_RETRY,
                         fallback=False) as s:
            fp = s.register(csr)
            fut = s.submit(fp, rng.uniform(-1, 1, 40))
            s.flush()
            with pytest.raises(ReproError):
                fut.result(timeout=5.0)
        assert s.stats.n_failed == 1


class TestDegradation:
    def test_preprocess_fault_falls_back(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="preprocess_error"))
        with make_server(fault_injector=inj) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 40)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)
        assert s.stats.degraded_requests >= 1

    def test_nan_output_detected_and_degraded(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_nan"))
        with make_server(fault_injector=inj, retry=NO_RETRY) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 40)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=5.0)
        assert np.isfinite(y).all()
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)
        assert s.stats.degraded_requests >= 1

    def test_plan_over_budget_served_from_fallback(self, rng):
        csr = random_csr(60, 80, rng)
        with make_server(cache_budget_bytes=1) as s:
            fp = s.register(csr)
            x = rng.uniform(-1, 1, 80)
            fut = s.submit(fp, x)
            s.flush()
            y = fut.result(timeout=5.0)
        assert np.allclose(y, csr.matvec(x), rtol=1e-10)
        assert s.stats.degraded_requests >= 1
        assert len(s.registry) == 0

    def test_breaker_opens_and_quarantines(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_error"))
        cfg = BreakerConfig(failure_threshold=2, recovery_s=60.0)
        with make_server(fault_injector=inj, retry=NO_RETRY,
                         breaker=cfg) as s:
            fp = s.register(csr)
            for _ in range(4):
                fut = s.submit(fp, rng.uniform(-1, 1, 40))
                s.flush()
                fut.result(timeout=5.0)  # degraded, still answered
        assert s.stats.breaker_state.get(fp) == OPEN
        assert s.stats.breaker_transitions >= 1
        assert s.stats.degraded_requests == 4

    def test_degraded_batches_issue_no_mma_flops(self, rng):
        csr = random_csr(30, 40, rng)
        inj = injector(FaultRule(kind="kernel_error"))
        with make_server(fault_injector=inj, retry=NO_RETRY) as s:
            fp = s.register(csr)
            fut = s.submit(fp, rng.uniform(-1, 1, 40))
            s.flush()
            fut.result(timeout=5.0)
        assert s.stats.issued_mma_flops == 0.0


class TestSubmitValidation:
    def test_unknown_fingerprint_raises_on_caller(self, rng):
        with make_server() as s:
            with pytest.raises(ReproError):
                s.submit("deadbeef", np.ones(4))

    def test_wrong_length_x(self, rng):
        csr = random_csr(30, 40, rng)
        with make_server() as s:
            fp = s.register(csr)
            with pytest.raises(ValidationError):
                s.submit(fp, np.ones(39))

    def test_non_finite_x(self, rng):
        csr = random_csr(30, 40, rng)
        with make_server() as s:
            fp = s.register(csr)
            x = np.ones(40)
            x[3] = np.nan
            with pytest.raises(ValidationError):
                s.submit(fp, x)
            x[3] = np.inf
            with pytest.raises(ValidationError):
                s.submit(fp, x)


class TestShutdown:
    def test_submit_after_close_raises(self, rng):
        csr = random_csr(30, 40, rng)
        s = make_server()
        fp = s.register(csr)
        s.close()
        with pytest.raises(ServerClosedError):
            s.submit(fp, np.ones(40))
        with pytest.raises(ServerClosedError):
            s.register(csr)

    def test_abort_resolves_parked_futures(self, rng):
        csr = random_csr(30, 40, rng)
        s = make_server(flush_timeout_s=60.0)  # nothing auto-flushes
        fp = s.register(csr)
        futs = [s.submit(fp, rng.uniform(-1, 1, 40)) for _ in range(3)]
        s.close(timeout=5.0, drain=False)
        for fut in futs:
            with pytest.raises(ServerClosedError):
                fut.result(timeout=5.0)
        assert s.stats.n_closed == 3

    def test_drain_close_serves_parked_futures(self, rng):
        csr = random_csr(30, 40, rng)
        s = make_server(flush_timeout_s=60.0)
        fp = s.register(csr)
        x = rng.uniform(-1, 1, 40)
        fut = s.submit(fp, x)
        s.close(timeout=5.0)  # drain=True flushes + executes
        assert np.allclose(fut.result(timeout=5.0), csr.matvec(x),
                           rtol=1e-10)

    def test_flusher_stops_even_with_long_timeout(self, rng):
        s = make_server(flush_timeout_s=120.0)
        flusher = s._flusher
        t0 = time.perf_counter()
        s.close(timeout=5.0)
        assert time.perf_counter() - t0 < 5.0
        flusher.join(timeout=5.0)
        assert not flusher.is_alive()

    def test_close_idempotent(self, rng):
        s = make_server()
        s.close()
        s.close()  # second close is a no-op

    def test_concurrent_register_submit_close_race(self, rng):
        """Threaded stress: every submitted future must resolve."""
        csrs = [random_csr(20, 30, rng) for _ in range(3)]
        s = make_server(flush_timeout_s=0.001, workers=3, queue_depth=256)
        fps = [s.register(c) for c in csrs]
        barrier = threading.Barrier(5)
        futures: list[Future] = []
        fut_lock = threading.Lock()
        errs: list[Exception] = []

        def submitter(seed):
            r = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(40):
                i = int(r.integers(len(fps)))
                try:
                    f = s.submit(fps[i], r.uniform(-1, 1, 30))
                except ServerClosedError:
                    return  # close won the race: acceptable
                except Exception as exc:  # noqa: BLE001
                    errs.append(exc)
                    return
                with fut_lock:
                    futures.append(f)

        def closer():
            barrier.wait()
            time.sleep(0.02)
            s.close(timeout=10.0)

        threads = [threading.Thread(target=submitter, args=(i,))
                   for i in range(4)] + [threading.Thread(target=closer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        s.close(timeout=10.0)
        assert not errs
        resolved = 0
        for f in futures:
            assert f.done(), "leaked future after close"
            if f.exception(timeout=0) is None:
                resolved += 1
            else:
                assert isinstance(f.exception(timeout=0), ServerClosedError)
        # served + swept must cover every submitted future
        assert resolved + s.stats.n_closed >= len(futures)
