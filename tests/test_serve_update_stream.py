"""Update-stream serving: mixed delta:read traffic through the drivers.

The dynamic-matrix serving contract, end to end:

* the batcher's **version fence** — a batch is homogeneous in matrix
  version, so requests admitted before an update never share an SpMM
  with requests admitted after it;
* ``update_mix`` traffic is bit-deterministic (dedicated ``seed + 17``
  stream) and ``update_mix=0`` leaves every pre-delta counter at zero;
* the cluster broadcasts each delta to every replica (version chains in
  lockstep, the home replica persisting to the shared store) and keeps
  N=1 exact parity with the single-replica driver;
* updates interleaved with chaos windows and deadlines lose no futures.
"""

import numpy as np
import pytest

from repro.cluster.driver import ClusterConfig, run_cluster_workload
from repro.matrices import synthetic_collection
from repro.serve.batcher import RequestBatcher
from repro.serve.driver import WorkloadConfig, run_workload
from repro.serve.request import SpMVRequest
from repro.store import PlanStore


def _entries(n=3, seed=5):
    return synthetic_collection(n, seed=seed)


def _cfg(**kw):
    kw.setdefault("entries", _entries())
    kw.setdefault("n_matrices", 3)
    kw.setdefault("n_requests", 500)
    kw.setdefault("seed", 11)
    return WorkloadConfig(**kw)


class TestBatcherVersionFence:
    def _req(self, i, version, fp="m"):
        return SpMVRequest(fingerprint=fp, x=np.zeros(4), req_id=i,
                           arrival_s=0.0, version=version)

    def test_version_change_flushes_pending_group(self):
        b = RequestBatcher(max_batch=8)
        for i in range(3):
            assert b.add(self._req(i, 0), now=0.0) is None
        fence = b.add(self._req(3, 1), now=1.0)
        assert fence is not None
        assert [r.req_id for r in fence.requests] == [0, 1, 2]
        assert all(r.version == 0 for r in fence.requests)
        # the new-version request starts a fresh group
        assert b.pending_count("m") == 1
        nxt = b.flush("m", now=2.0)
        assert [r.req_id for r in nxt.requests] == [3]
        assert nxt.requests[0].version == 1

    def test_same_version_never_fences(self):
        b = RequestBatcher(max_batch=4)
        for i in range(3):
            assert b.add(self._req(i, 2), now=0.0) is None
        full = b.add(self._req(3, 2), now=0.0)
        assert full is not None and len(full.requests) == 4

    def test_fence_per_fingerprint(self):
        b = RequestBatcher(max_batch=8)
        b.add(self._req(0, 0, fp="a"), now=0.0)
        b.add(self._req(1, 0, fp="b"), now=0.0)
        fence = b.add(self._req(2, 1, fp="a"), now=0.0)
        assert fence is not None and fence.fingerprint == "a"
        assert b.pending_count("b") == 1  # other matrix untouched


class TestSingleDriverUpdateStream:
    def test_deterministic(self):
        kw = dict(update_mix=0.12, structural_frac=0.4)
        a = run_workload(_cfg(**kw))
        b = run_workload(_cfg(**kw))
        assert a.n_completed == b.n_completed
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert a.delta_value_updates == b.delta_value_updates
        assert a.delta_structural_updates == b.delta_structural_updates
        assert a.delta_patch_modeled_s == b.delta_patch_modeled_s

    def test_mix_zero_has_no_delta_traffic(self):
        stats = run_workload(_cfg())
        assert stats.delta_value_updates == 0
        assert stats.delta_structural_updates == 0
        assert stats.delta_patch_modeled_s == 0.0
        assert stats.n_requests == 500  # every slot was a read

    def test_updates_consume_arrival_slots(self):
        stats = run_workload(_cfg(update_mix=0.2, structural_frac=0.3))
        n_updates = (stats.delta_value_updates
                     + stats.delta_structural_updates)
        assert n_updates > 0
        assert stats.n_requests + n_updates == 500
        assert stats.n_completed == stats.n_requests  # nothing lost

    def test_patch_cheaper_than_rebuild(self):
        stats = run_workload(_cfg(update_mix=0.1, structural_frac=0.3))
        assert 0 < stats.delta_patch_modeled_s < stats.delta_rebuild_modeled_s

    def test_no_cache_baseline_evolves_csr(self):
        # plan_cache=False has no plan to patch: the reference CSR
        # evolves and every batch rebuilds against the updated matrix
        stats = run_workload(_cfg(update_mix=0.15, structural_frac=0.5,
                                  plan_cache=False, n_requests=300))
        n_updates = (stats.delta_value_updates
                     + stats.delta_structural_updates)
        assert n_updates > 0
        assert stats.n_completed == stats.n_requests
        assert stats.delta_patch_modeled_s == 0.0  # nothing was patched

    def test_sharded_update_stream(self):
        stats = run_workload(_cfg(update_mix=0.1, structural_frac=0.4,
                                  shards=2, n_requests=300))
        assert (stats.delta_value_updates
                + stats.delta_structural_updates) > 0
        assert stats.n_completed == stats.n_requests

    def test_spmm_mix_and_update_mix_compose(self):
        stats = run_workload(_cfg(update_mix=0.1, spmm_mix=0.15,
                                  n_requests=300))
        assert (stats.delta_value_updates
                + stats.delta_structural_updates) > 0
        assert stats.n_completed >= stats.n_requests  # SpMM widths >= 1

    def test_deltas_persist_to_store(self, tmp_path):
        run_workload(_cfg(update_mix=0.15, structural_frac=0.5,
                          store=tmp_path, n_requests=300))
        store = PlanStore(tmp_path)
        versions = [store.current_version(fp)
                    for fp in store.fingerprints()]
        assert versions and max(versions) > 0
        # every persisted chain replays cleanly
        for fp in store.fingerprints():
            assert store.load(fp, gate=False) is not None


class TestClusterUpdateStream:
    def test_n1_parity_with_updates(self):
        kw = dict(n_requests=400, entries=_entries(), n_matrices=3,
                  update_mix=0.1, structural_frac=0.4, seed=11)
        single = run_workload(WorkloadConfig(**kw))
        cluster = run_cluster_workload(ClusterConfig(n_replicas=1, **kw))
        s = cluster.replicas["r0"]
        assert s.n_completed == single.n_completed
        assert np.array_equal(s.latencies_s, single.latencies_s)
        assert s.delta_value_updates == single.delta_value_updates
        assert s.delta_structural_updates == single.delta_structural_updates
        assert cluster.n_updates == (s.delta_value_updates
                                     + s.delta_structural_updates)
        assert cluster.n_offered == 400 - cluster.n_updates

    def test_broadcast_reaches_every_replica(self):
        stats = run_cluster_workload(ClusterConfig(
            n_replicas=3, n_requests=600, entries=_entries(), n_matrices=3,
            update_mix=0.1, structural_frac=0.3, seed=11))
        per_replica = [s.delta_value_updates + s.delta_structural_updates
                       for s in stats.replicas.values()]
        assert len(set(per_replica)) == 1
        assert per_replica[0] == stats.n_updates > 0

    def test_home_replica_persists_once(self, tmp_path):
        stats = run_cluster_workload(ClusterConfig(
            n_replicas=3, n_requests=400, entries=_entries(), n_matrices=3,
            update_mix=0.12, structural_frac=0.4, seed=11, store=tmp_path))
        assert stats.n_updates > 0
        # contiguous chains prove exactly one writer per matrix: a
        # second concurrent writer would have tripped put_delta's
        # version check and crashed the run
        store = PlanStore(tmp_path)
        for fp in store.fingerprints():
            assert store.load(fp, gate=False) is not None

    def test_zero_lost_futures_under_chaos_and_deadlines(self):
        from repro.overload import (HedgeConfig, OverloadConfig,
                                    RetryBudgetConfig)

        stats = run_cluster_workload(ClusterConfig(
            n_replicas=4, n_requests=1200, entries=_entries(), n_matrices=3,
            update_mix=0.08, structural_frac=0.3, seed=11,
            deadline_s=0.005, partition_replica=1,
            partition_window=(0.3, 0.6),
            overload=OverloadConfig(retry_budget=RetryBudgetConfig(),
                                    hedge=HedgeConfig())))
        assert stats.n_updates > 0
        assert stats.lost_requests == 0

    def test_elastic_scale_up_sees_evolved_matrices(self):
        # a replica spawned mid-run under an update stream must start
        # from the evolved CSR state, or delta replay would fault
        from repro.cluster import ElasticConfig

        stats = run_cluster_workload(ClusterConfig(
            n_replicas=1, n_requests=800, entries=_entries(), n_matrices=3,
            update_mix=0.1, structural_frac=0.5, seed=11,
            elastic=ElasticConfig(min_replicas=1, max_replicas=3,
                                  scale_up_depth=1.0, cooldown_s=0.0)))
        assert stats.n_updates > 0
        assert stats.n_scale_up >= 1
        assert stats.n_completed > 0
