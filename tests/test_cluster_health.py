"""Hysteresis health monitor tests (repro.cluster.health)."""

import pytest

from repro.cluster import HealthConfig, ReplicaHealth, ReplicaSignals
from repro.obs import Obs


def bad(depth=999):
    return ReplicaSignals(queue_depth=depth)


def good():
    return ReplicaSignals()


class TestThresholds:
    def test_defaults_are_validated(self):
        with pytest.raises(Exception):
            HealthConfig(down_after=0)
        with pytest.raises(Exception):
            HealthConfig(max_miss_rate=1.5)

    def test_each_signal_trips(self):
        h = ReplicaHealth(HealthConfig(max_queue_depth=10,
                                       max_open_circuits=0,
                                       max_miss_rate=0.5))
        assert not h.is_bad(ReplicaSignals())
        assert h.is_bad(ReplicaSignals(queue_depth=10))
        assert not h.is_bad(ReplicaSignals(queue_depth=9))
        assert h.is_bad(ReplicaSignals(open_circuits=1))
        assert h.is_bad(ReplicaSignals(miss_rate=0.6))
        assert not h.is_bad(ReplicaSignals(miss_rate=0.5))

    def test_none_disables_a_threshold(self):
        h = ReplicaHealth(HealthConfig(max_queue_depth=None,
                                       max_open_circuits=None,
                                       max_miss_rate=None))
        assert not h.is_bad(ReplicaSignals(queue_depth=10**6,
                                           open_circuits=50, miss_rate=1.0))


class TestHysteresis:
    def test_down_needs_consecutive_bad(self):
        h = ReplicaHealth(HealthConfig(down_after=2, up_after=3))
        assert h.observe("r0", bad())       # streak 1: still healthy
        assert h.is_healthy("r0")
        assert h.observe("r0", good())      # streak broken
        assert h.observe("r0", bad())
        assert not h.observe("r0", bad())   # two consecutive: down
        assert not h.is_healthy("r0")

    def test_up_needs_consecutive_good(self):
        h = ReplicaHealth(HealthConfig(down_after=1, up_after=3))
        h.observe("r0", bad())
        assert not h.is_healthy("r0")
        h.observe("r0", good())
        h.observe("r0", good())
        assert not h.is_healthy("r0")       # only 2 good so far
        h.observe("r0", bad())              # relapse resets the streak
        h.observe("r0", good())
        h.observe("r0", good())
        assert h.observe("r0", good())      # third consecutive: back up
        assert h.is_healthy("r0")

    def test_unknown_replica_is_healthy(self):
        h = ReplicaHealth()
        assert h.is_healthy("never-seen")
        assert h.unhealthy_count() == 0

    def test_forget_drops_state(self):
        h = ReplicaHealth(HealthConfig(down_after=1))
        h.observe("r0", bad())
        assert h.unhealthy_count() == 1
        h.forget("r0")
        assert h.is_healthy("r0")
        assert h.unhealthy_count() == 0


class TestTelemetry:
    def test_counters_and_gauge(self):
        obs = Obs()
        h = ReplicaHealth(HealthConfig(down_after=1, up_after=1), obs=obs)
        h.observe("r0", bad())
        h.observe("r1", good())
        h.observe("r0", good())
        reg = obs.registry
        assert reg.counter("cluster.health.probes_total").value == 3
        assert reg.counter("cluster.health.transitions_total",
                           {"to": "down"}).value == 1
        assert reg.counter("cluster.health.transitions_total",
                           {"to": "up"}).value == 1
        assert reg.gauge("cluster.health.unhealthy").value == 0

    def test_snapshot_shape(self):
        h = ReplicaHealth(HealthConfig(down_after=1))
        h.observe("r1", ReplicaSignals(queue_depth=70, miss_rate=0.1))
        snap = h.snapshot()
        assert snap["r1"]["healthy"] is False
        assert snap["r1"]["queue_depth"] == 70
        assert snap["r1"]["miss_rate"] == 0.1


class TestLocking:
    def test_concurrent_observe_snapshot_forget(self):
        """Regression: observe() mutating replica state while another
        thread snapshots/forgets must not corrupt the dict or raise
        (pre-lock, dict iteration during mutation blew up)."""
        import threading

        h = ReplicaHealth(HealthConfig(down_after=2, up_after=2))
        stop = threading.Event()
        errors = []

        def worker(fn):
            try:
                while not stop.is_set():
                    fn()
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        i = [0]

        def observe():
            rid = f"r{i[0] % 8}"
            i[0] += 1
            h.observe(rid, bad() if i[0] % 3 else good())

        def read():
            h.snapshot()
            h.stragglers()
            h.is_healthy("r0")

        def churn():
            h.forget(f"r{i[0] % 8}")
            h.observe_unreachable("r9")

        threads = [threading.Thread(target=worker, args=(fn,))
                   for fn in (observe, observe, read, churn)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors


class TestStraggler:
    def tracked(self, factor=2.0):
        h = ReplicaHealth(HealthConfig(straggler_factor=factor))
        for rid, lat in (("r0", 0.001), ("r1", 0.001), ("r2", 0.010)):
            h.observe(rid, ReplicaSignals(latency_ewma_s=lat))
        return h

    def test_detects_far_above_peer_median(self):
        h = self.tracked()
        assert h.is_straggler("r2")
        assert not h.is_straggler("r0")
        assert h.stragglers() == ["r2"]
        assert h.snapshot()["r2"]["straggler"]

    def test_disabled_without_factor(self):
        h = ReplicaHealth(HealthConfig())
        for rid, lat in (("r0", 0.001), ("r1", 0.001), ("r2", 0.010)):
            h.observe(rid, ReplicaSignals(latency_ewma_s=lat))
        assert not h.is_straggler("r2")
        assert h.stragglers() == []

    def test_needs_two_positive_peers(self):
        h = ReplicaHealth(HealthConfig(straggler_factor=2.0))
        h.observe("r0", ReplicaSignals(latency_ewma_s=0.010))
        h.observe("r1", ReplicaSignals(latency_ewma_s=0.001))
        assert not h.is_straggler("r0")

    def test_unhealthy_replica_is_not_a_straggler(self):
        """Down replicas are already out of the preference walk; the
        straggler list is only for healthy-but-slow soft drains."""
        h = ReplicaHealth(HealthConfig(straggler_factor=2.0,
                                       down_after=1))
        for rid, lat in (("r0", 0.001), ("r1", 0.001)):
            h.observe(rid, ReplicaSignals(latency_ewma_s=lat))
        h.observe("r2", ReplicaSignals(queue_depth=10**6,
                                       latency_ewma_s=0.010))
        assert not h.is_healthy("r2")
        assert not h.is_straggler("r2")


class TestUnreachable:
    def test_observe_unreachable_trips_every_threshold(self):
        h = ReplicaHealth(HealthConfig(down_after=2, up_after=1))
        assert h.observe_unreachable("r0")   # streak 1: still up
        assert not h.observe_unreachable("r0")
        assert not h.is_healthy("r0")
        assert h.observe("r0", good())       # link back: recovers
        assert h.is_healthy("r0")
