"""Hysteresis health monitor tests (repro.cluster.health)."""

import pytest

from repro.cluster import HealthConfig, ReplicaHealth, ReplicaSignals
from repro.obs import Obs


def bad(depth=999):
    return ReplicaSignals(queue_depth=depth)


def good():
    return ReplicaSignals()


class TestThresholds:
    def test_defaults_are_validated(self):
        with pytest.raises(Exception):
            HealthConfig(down_after=0)
        with pytest.raises(Exception):
            HealthConfig(max_miss_rate=1.5)

    def test_each_signal_trips(self):
        h = ReplicaHealth(HealthConfig(max_queue_depth=10,
                                       max_open_circuits=0,
                                       max_miss_rate=0.5))
        assert not h.is_bad(ReplicaSignals())
        assert h.is_bad(ReplicaSignals(queue_depth=10))
        assert not h.is_bad(ReplicaSignals(queue_depth=9))
        assert h.is_bad(ReplicaSignals(open_circuits=1))
        assert h.is_bad(ReplicaSignals(miss_rate=0.6))
        assert not h.is_bad(ReplicaSignals(miss_rate=0.5))

    def test_none_disables_a_threshold(self):
        h = ReplicaHealth(HealthConfig(max_queue_depth=None,
                                       max_open_circuits=None,
                                       max_miss_rate=None))
        assert not h.is_bad(ReplicaSignals(queue_depth=10**6,
                                           open_circuits=50, miss_rate=1.0))


class TestHysteresis:
    def test_down_needs_consecutive_bad(self):
        h = ReplicaHealth(HealthConfig(down_after=2, up_after=3))
        assert h.observe("r0", bad())       # streak 1: still healthy
        assert h.is_healthy("r0")
        assert h.observe("r0", good())      # streak broken
        assert h.observe("r0", bad())
        assert not h.observe("r0", bad())   # two consecutive: down
        assert not h.is_healthy("r0")

    def test_up_needs_consecutive_good(self):
        h = ReplicaHealth(HealthConfig(down_after=1, up_after=3))
        h.observe("r0", bad())
        assert not h.is_healthy("r0")
        h.observe("r0", good())
        h.observe("r0", good())
        assert not h.is_healthy("r0")       # only 2 good so far
        h.observe("r0", bad())              # relapse resets the streak
        h.observe("r0", good())
        h.observe("r0", good())
        assert h.observe("r0", good())      # third consecutive: back up
        assert h.is_healthy("r0")

    def test_unknown_replica_is_healthy(self):
        h = ReplicaHealth()
        assert h.is_healthy("never-seen")
        assert h.unhealthy_count() == 0

    def test_forget_drops_state(self):
        h = ReplicaHealth(HealthConfig(down_after=1))
        h.observe("r0", bad())
        assert h.unhealthy_count() == 1
        h.forget("r0")
        assert h.is_healthy("r0")
        assert h.unhealthy_count() == 0


class TestTelemetry:
    def test_counters_and_gauge(self):
        obs = Obs()
        h = ReplicaHealth(HealthConfig(down_after=1, up_after=1), obs=obs)
        h.observe("r0", bad())
        h.observe("r1", good())
        h.observe("r0", good())
        reg = obs.registry
        assert reg.counter("cluster.health.probes_total").value == 3
        assert reg.counter("cluster.health.transitions_total",
                           {"to": "down"}).value == 1
        assert reg.counter("cluster.health.transitions_total",
                           {"to": "up"}).value == 1
        assert reg.gauge("cluster.health.unhealthy").value == 0

    def test_snapshot_shape(self):
        h = ReplicaHealth(HealthConfig(down_after=1))
        h.observe("r1", ReplicaSignals(queue_depth=70, miss_rate=0.1))
        snap = h.snapshot()
        assert snap["r1"]["healthy"] is False
        assert snap["r1"]["queue_depth"] == 70
        assert snap["r1"]["miss_rate"] == 0.1
