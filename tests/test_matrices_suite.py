"""Tests for the representative / highlight suites (Table 2 stand-ins)."""

import numpy as np
import pytest

from repro.core import classify_rows
from repro.matrices import (
    category_ratios,
    highlight_suite,
    representative_suite,
    suite_by_name,
)

PAPER_TABLE2_NAMES = {
    "pwtk", "FullChip", "mip1", "mc2depi", "webbase-1M", "circuit5M",
    "Si41Ge41H72", "Ga41As41H72", "in-2004", "eu-2005", "shipsec1",
    "mac_econ_fwd500", "scircuit", "pdb1HYS", "consph", "cant",
    "cop20k_A", "dc2", "rma10", "conf5_4-8x8-10", "ASIC_680k",
}


class TestRepresentativeSuite:
    def test_has_21_matrices(self):
        assert len(representative_suite()) == 21

    def test_names_match_table2(self):
        assert {e.name for e in representative_suite()} == PAPER_TABLE2_NAMES

    def test_paper_metadata_recorded(self):
        for e in representative_suite():
            assert e.paper_nnz > 0
            assert e.paper_shape[0] > 0 and e.paper_shape[1] > 0

    def test_matrices_buildable_and_valid(self):
        for e in representative_suite():
            csr = e.matrix()
            csr.validate()
            assert csr.nnz > 1000, e.name

    def test_deterministic(self):
        e = suite_by_name("cant")
        a, b = e.matrix(), e.matrix()
        assert np.array_equal(a.data, b.data)


class TestStructuralFidelity:
    """Category profiles must match what the paper says about each matrix."""

    def test_mc2depi_all_short(self):
        c = category_ratios(suite_by_name("mc2depi").matrix())
        assert c.row_short > 0.99 and c.nnz_short > 0.99

    def test_fem_matrices_all_medium(self):
        for name in ("pwtk", "cant", "consph", "shipsec1", "rma10"):
            c = category_ratios(suite_by_name(name).matrix())
            assert c.row_medium > 0.95, name

    def test_cop20k_has_empty_rows(self):
        cls = classify_rows(suite_by_name("cop20k_A").matrix())
        assert cls.n_empty > 1000  # paper: 21349 at full scale

    def test_quantum_chem_long_tail(self):
        for name in ("Si41Ge41H72", "Ga41As41H72"):
            c = category_ratios(suite_by_name(name).matrix())
            assert c.nnz_long > 0.1, name

    def test_circuit_mixed_categories(self):
        for name in ("FullChip", "dc2", "circuit5M"):
            c = category_ratios(suite_by_name(name).matrix())
            assert c.row_short > 0.2 and c.nnz_long > 0.05, name

    def test_webbase_short_dominated(self):
        c = category_ratios(suite_by_name("webbase-1M").matrix())
        assert c.row_short > 0.7


class TestHighlightSuite:
    def test_names(self):
        assert {e.name for e in highlight_suite()} == {
            "rel19", "kron_g500-logn20", "mycielskian18", "lp_osa_60",
            "wiki-Talk", "bibd_20_10"}

    def test_rel19_all_short(self):
        c = category_ratios(suite_by_name("rel19").matrix())
        assert c.nnz_short > 0.99

    def test_bibd_all_long(self):
        c = category_ratios(suite_by_name("bibd_20_10").matrix())
        assert c.nnz_long > 0.99

    def test_wiki_talk_skew(self):
        csr = suite_by_name("wiki-Talk").matrix()
        lens = csr.row_lengths()
        top = np.sort(lens)[::-1][: max(lens.size // 100, 1)]
        assert top.sum() > 0.25 * lens.sum()  # few rows hold most nonzeros

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            suite_by_name("not_a_matrix")
