"""Tests for the CSR format (the base format of the pipeline)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._util import ValidationError
from repro.formats import CSRMatrix
from tests.conftest import random_csr


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        assert np.array_equal(CSRMatrix.from_dense(small_dense).to_dense(),
                              small_dense)

    def test_from_scipy(self, rng):
        s = sp.random(30, 40, density=0.1, random_state=1, format="csr")
        ours = CSRMatrix.from_scipy(s)
        assert np.allclose(ours.to_dense(), s.toarray())

    def test_empty_factory(self):
        e = CSRMatrix.empty((5, 7), dtype=np.float16)
        assert e.nnz == 0 and e.shape == (5, 7) and e.dtype == np.float16

    def test_rejects_nonmonotone_indptr(self):
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValidationError):
            CSRMatrix((1, 2), [1, 2], [0, 1], [1.0, 2.0])

    def test_rejects_indptr_nnz_mismatch(self):
        with pytest.raises(ValidationError):
            CSRMatrix((1, 2), [0, 3], [0, 1], [1.0, 2.0])

    def test_rejects_col_out_of_bounds(self):
        with pytest.raises(ValidationError):
            CSRMatrix((1, 2), [0, 1], [2], [1.0])

    def test_rejects_wrong_indptr_length(self):
        with pytest.raises(ValidationError):
            CSRMatrix((3, 2), [0, 1], [0], [1.0])


class TestIntrospection:
    def test_row_lengths(self):
        csr = CSRMatrix((3, 4), [0, 2, 2, 3], [0, 1, 3], [1.0, 2.0, 3.0])
        assert list(csr.row_lengths()) == [2, 0, 1]

    def test_nnz(self, profiled_matrix):
        assert profiled_matrix.nnz == profiled_matrix.data.size

    def test_nbytes_accounts_all_arrays(self):
        csr = CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0, 2.0])
        expected = csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes
        assert csr.nbytes == expected

    def test_sorted_indices_detection(self):
        sorted_csr = CSRMatrix((2, 4), [0, 2, 4], [0, 2, 1, 3], np.ones(4))
        unsorted = CSRMatrix((2, 4), [0, 2, 4], [2, 0, 1, 3], np.ones(4))
        assert sorted_csr.has_sorted_indices()
        assert not unsorted.has_sorted_indices()

    def test_sorted_indices_allows_row_boundary_decrease(self):
        csr = CSRMatrix((2, 4), [0, 2, 4], [2, 3, 0, 1], np.ones(4))
        assert csr.has_sorted_indices()

    def test_sort_indices(self, rng):
        csr = CSRMatrix((2, 5), [0, 3, 5], [4, 0, 2, 3, 1],
                        [1.0, 2.0, 3.0, 4.0, 5.0])
        s = csr.sort_indices()
        assert s.has_sorted_indices()
        assert np.array_equal(s.to_dense(), csr.to_dense())


class TestRowOperations:
    def test_permute_rows(self, rng):
        csr = random_csr(20, 15, rng)
        perm = rng.permutation(20)
        assert np.array_equal(csr.permute_rows(perm).to_dense(),
                              csr.to_dense()[perm])

    def test_permute_rejects_wrong_length(self, rng):
        csr = random_csr(5, 5, rng)
        with pytest.raises(ValidationError):
            csr.permute_rows(np.arange(4))

    def test_row_slice(self, rng):
        csr = random_csr(20, 15, rng)
        rows = np.array([3, 3, 7, 0])
        sliced = csr.row_slice(rows)
        assert sliced.shape == (4, 15)
        assert np.array_equal(sliced.to_dense(), csr.to_dense()[rows])


class TestMatvec:
    def test_matches_scipy(self, profiled_matrix, rng):
        x = rng.standard_normal(profiled_matrix.shape[1])
        s = sp.csr_matrix(
            (profiled_matrix.data, profiled_matrix.indices,
             profiled_matrix.indptr), shape=profiled_matrix.shape)
        assert np.allclose(profiled_matrix.matvec(x), s @ x)

    def test_empty_rows_stay_zero(self):
        csr = CSRMatrix((3, 2), [0, 1, 1, 2], [0, 1], [2.0, 3.0])
        y = csr.matvec(np.array([1.0, 1.0]))
        assert y[1] == 0.0

    def test_all_empty(self):
        csr = CSRMatrix.empty((4, 4))
        assert np.array_equal(csr.matvec(np.ones(4)), np.zeros(4))

    def test_matmul_operator(self, rng):
        csr = random_csr(10, 10, rng)
        x = rng.standard_normal(10)
        assert np.allclose(csr @ x, csr.matvec(x))

    def test_accum_dtype_fp32(self):
        csr = CSRMatrix((1, 2), [0, 2], [0, 1], np.array([1, 1], np.float16))
        y = csr.matvec(np.ones(2, dtype=np.float16), accum_dtype=np.float32)
        assert y.dtype == np.float32

    def test_rejects_wrong_x(self, rng):
        with pytest.raises(ValidationError):
            random_csr(4, 6, rng).matvec(np.zeros(4))

    def test_trailing_empty_rows(self):
        csr = CSRMatrix((4, 2), [0, 1, 1, 1, 1], [1], [5.0])
        y = csr.matvec(np.array([0.0, 2.0]))
        assert list(y) == [10.0, 0.0, 0.0, 0.0]

    def test_astype_fp16(self, rng):
        csr = random_csr(6, 6, rng)
        assert csr.astype(np.float16).data.dtype == np.float16
