"""Tests for the virtual-time workload driver."""

import numpy as np
import pytest

from repro._util import ValidationError
from repro.serve import (
    WorkloadConfig,
    compare_batched_unbatched,
    run_workload,
    zipf_weights,
)


class FakeEntry:
    """Suite-like entry wrapping a prebuilt CSR matrix."""

    def __init__(self, name, csr):
        self.name = name
        self._csr = csr

    def matrix(self):
        return self._csr


def small_entries(rng, n=2):
    from tests.conftest import random_csr

    return [FakeEntry(f"m{i}", random_csr(60, 120, rng)) for i in range(n)]


def small_cfg(rng, **kw):
    kw.setdefault("entries", small_entries(rng))
    kw.setdefault("n_requests", 300)
    kw.setdefault("seed", 42)
    return WorkloadConfig(**kw)


class TestZipf:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_single_item(self):
        assert zipf_weights(1, 1.0)[0] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            zipf_weights(0, 1.0)


class TestDriver:
    def test_deterministic(self, rng):
        s1 = run_workload(small_cfg(np.random.default_rng(5)))
        s2 = run_workload(small_cfg(np.random.default_rng(5)))
        assert s1.n_batches == s2.n_batches
        assert s1.batch_hist == s2.batch_hist
        assert s1.device_busy_s == pytest.approx(s2.device_busy_s)
        assert s1.latency_percentiles() == s2.latency_percentiles()

    def test_accounting_consistent(self, rng):
        stats = run_workload(small_cfg(rng))
        assert stats.n_requests == 300
        assert (stats.n_completed + stats.n_rejected) == stats.n_requests
        assert sum(k * c for k, c in stats.batch_hist.items()) \
            == stats.n_completed
        assert sum(stats.batch_hist.values()) == stats.n_batches
        assert len(stats.latencies_s) == stats.n_completed
        pct = stats.latency_percentiles()
        assert pct[50] <= pct[95] <= pct[99]
        assert stats.duration_s > 0

    def test_saturating_rate_fills_batches(self, rng):
        stats = run_workload(small_cfg(rng))  # rate auto -> overload
        assert stats.mean_batch_size > 4.0
        assert stats.mma_utilization > 0.5

    def test_unbatched_all_singletons(self, rng):
        stats = run_workload(small_cfg(rng, max_batch=1, queue_depth=10**6))
        assert set(stats.batch_hist) == {1}
        assert stats.mean_batch_size == 1.0

    def test_low_rate_degenerates_to_singletons(self, rng):
        # arrivals far apart relative to the flush timeout: no coalescing
        stats = run_workload(small_cfg(rng, n_requests=50, rate_rps=10.0,
                                       flush_timeout_s=1e-4))
        assert stats.mean_batch_size < 1.5

    def test_cache_hits_dominate(self, rng):
        stats = run_workload(small_cfg(rng))
        assert stats.cache_misses == 2  # one per pool matrix
        assert stats.cache_hits == stats.n_batches - 2
        assert stats.cache_hit_rate > 0.8

    def test_no_cache_pays_preprocess_per_batch(self, rng):
        entries = small_entries(rng)
        cached = run_workload(small_cfg(rng, entries=entries))
        uncached = run_workload(small_cfg(rng, entries=entries,
                                          plan_cache=False))
        assert uncached.preprocess_s > 5 * cached.preprocess_s
        assert uncached.goodput_rps < cached.goodput_rps
        assert uncached.cache_hits == 0

    def test_tiny_queue_rejects(self, rng):
        stats = run_workload(small_cfg(rng, queue_depth=1))
        assert stats.n_rejected > 0

    def test_batched_beats_unbatched(self, rng):
        res = compare_batched_unbatched(small_cfg(rng))
        assert res["batched"].throughput_rps \
            > 2.0 * res["unbatched"].throughput_rps

    def test_rejects_zero_requests(self, rng):
        with pytest.raises(ValidationError):
            run_workload(small_cfg(rng, n_requests=0))

    def test_fp16_runs(self, rng):
        from tests.conftest import random_csr

        entries = [FakeEntry("h", random_csr(50, 100, rng,
                                             dtype=np.float16))]
        stats = run_workload(small_cfg(rng, entries=entries,
                                       dtype="float16", n_requests=100))
        assert stats.dtype == "float16"
        assert stats.n_completed > 0
