"""Shared session-scoped sweeps for the figure/table benchmarks.

The expensive comparisons (suite x methods x devices) run once per pytest
session and are reused by every benchmark file.  Each benchmark writes
its reproduction table under ``results/`` and prints it, so running

    pytest benchmarks/ --benchmark-only -s

regenerates every row/series the paper reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import run_comparison, results_path
from repro.matrices import highlight_suite, representative_suite, synthetic_collection

#: Collection size used by scatter-style figures (the paper uses all 2893
#: SuiteSparse matrices; we use a 120-matrix synthetic stand-in).
COLLECTION_SIZE = 120


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    results_path(f"{name}.md").write_text(text + "\n")


@pytest.fixture(scope="session")
def suite_entries():
    return representative_suite() + highlight_suite()


@pytest.fixture(scope="session")
def suite_fp64(suite_entries):
    """FP64 sweep over the 21 representative + 6 highlight matrices."""
    return run_comparison(suite_entries, device="A100", dtype=np.float64,
                          keep_matrices=True)


@pytest.fixture(scope="session")
def collection_fp64():
    """FP64 sweep over the synthetic collection (A100)."""
    return run_comparison(synthetic_collection(COLLECTION_SIZE),
                          device="A100", dtype=np.float64,
                          keep_matrices=True)


@pytest.fixture(scope="session")
def suite_fp16_a100(suite_entries):
    return run_comparison(suite_entries, device="A100", dtype=np.float16,
                          methods=("cuSPARSE-CSR", "DASP"))


@pytest.fixture(scope="session")
def suite_fp16_h800(suite_entries):
    return run_comparison(suite_entries, device="H800", dtype=np.float16,
                          methods=("cuSPARSE-CSR", "DASP"))


@pytest.fixture(scope="session")
def bench_matrix():
    """A mid-size matrix the pytest-benchmark timers exercise."""
    from repro.matrices import suite_by_name

    return suite_by_name("cant").matrix()


@pytest.fixture(scope="session")
def bench_vector(bench_matrix):
    rng = np.random.default_rng(3)
    return rng.uniform(-1, 1, bench_matrix.shape[1])
