"""Advisor benchmark — structural method selection vs exhaustive sweeps.

Ties into the paper's related work on format selection: a transparent
rule-based selector (``repro.analysis.advisor``) is scored against the
cost model's exhaustive best on the synthetic collection.
"""

from benchmarks.conftest import emit
from repro.analysis import advisor_accuracy, recommend
from repro.bench import markdown_table


def test_advisor(benchmark, collection_fp64):
    res = collection_fp64
    top1 = advisor_accuracy(res, top_k=1)
    top2 = advisor_accuracy(res, top_k=2)
    top3 = advisor_accuracy(res, top_k=3)
    emit("advisor", markdown_table(
        ("metric", "value"),
        [("top-1 hit rate", f"{top1:.0%}"),
         ("top-2 hit rate", f"{top2:.0%}"),
         ("top-3 hit rate", f"{top3:.0%}"),
         ("matrices", len(res.matrices))]))

    # chance levels are 1/6, 2/6, 3/6; the advisor must beat them clearly
    assert top1 > 0.35
    assert top2 > 0.55
    assert top3 > 0.65
    assert top1 <= top2 <= top3

    sample = next(iter(res.matrices.values()))
    benchmark(recommend, sample)
