"""Chaos benchmark — serving resilience under a seeded 5% fault mix.

Not a paper figure: quantifies the `repro.resilience` guarantees on
both serving stacks.

* **real server** — Zipf-ish traffic over a small matrix pool with 5%
  injected faults plus one permanently-poisoned matrix: >= 99% of
  requests must complete *correctly* within their deadline (degraded
  answers count — they are numerically exact), every future must
  resolve (no hangs, no leaks), and the run must actually exercise the
  machinery (retries, fallback, breaker transitions all nonzero);
* **virtual driver** — the chaos run is bit-deterministic given its
  seed, every request is accounted for, and with faults disabled the
  modeled throughput matches the resilience-free baseline within 5%
  (the hardening is free when nothing fails).

``CHAOS_SEED`` selects the fault-injector seed (the nightly CI job
sweeps three of them).
"""

import os

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench import markdown_table
from repro.resilience import (
    BreakerConfig,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from repro.serve import ChaosConfig, SpMVServer, WorkloadConfig, run_workload
from tests.conftest import random_csr

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))
FAULT_RATE = 0.05
N_REQUESTS = 400
DEADLINE_S = 30.0  # generous: failures, not load, are under test

pytestmark = pytest.mark.slow


def test_real_server_survives_chaos():
    rng = np.random.default_rng(42)
    pool = [random_csr(90, 110, rng) for _ in range(4)]

    plan = FaultPlan.chaos_mix(FAULT_RATE, seed=CHAOS_SEED)
    server = SpMVServer(
        max_batch=8, flush_timeout_s=0.002, workers=2, queue_depth=512,
        default_deadline_s=DEADLINE_S,
        retry=RetryPolicy(max_retries=2, base_delay_s=1e-4, jitter=0.5),
        breaker=BreakerConfig(failure_threshold=2, recovery_s=0.5),
        fault_injector=None,  # installed below, after fingerprints exist
        seed=CHAOS_SEED,
    )
    fps = [server.register(csr) for csr in pool]
    # poison the least popular matrix: its kernel always fails, so its
    # circuit must open and its traffic must ride the fallback
    plan.rules.append(FaultRule(kind="kernel_error", fingerprint=fps[-1]))
    injector = FaultInjector(plan)
    server.fault_injector = injector
    server.registry.fault_injector = injector

    weights = np.array([0.4, 0.3, 0.2, 0.1])
    choices = rng.choice(len(pool), size=N_REQUESTS, p=weights)
    submitted = []
    for i in range(N_REQUESTS):
        j = int(choices[i])
        x = rng.uniform(-1, 1, pool[j].shape[1])
        submitted.append((j, x, server.submit(fps[j], x)))
    server.drain(timeout=60.0)
    server.close(timeout=60.0)
    stats = server.stats

    in_deadline_correct = 0
    for j, x, fut in submitted:
        assert fut.done(), "leaked future after close"
        if fut.exception(timeout=0) is not None:
            continue  # deadline/failure: counted against the 99% bar
        y = fut.result(timeout=0)
        if np.allclose(y, pool[j].matvec(x), rtol=1e-8):
            in_deadline_correct += 1
    ratio = in_deadline_correct / N_REQUESTS

    emit("serve_resilience_chaos", markdown_table(
        ("metric", "value"), [
            ("fault seed / rate", f"{CHAOS_SEED} / {FAULT_RATE:.0%}"),
            ("in-deadline correct", f"{in_deadline_correct}/{N_REQUESTS} "
             f"({ratio:.2%})"),
            ("faults injected", f"{stats.faults_injected}"),
            ("retries", f"{stats.retries}"),
            ("degraded (fallback ratio)",
             f"{stats.degraded_requests} ({stats.fallback_ratio:.1%})"),
            ("breaker transitions", f"{stats.breaker_transitions}"),
            ("deadline exceeded / failed / closed",
             f"{stats.n_deadline_exceeded} / {stats.n_failed} "
             f"/ {stats.n_closed}"),
        ]))

    assert ratio >= 0.99, f"only {ratio:.2%} correct within deadline"
    assert stats.faults_injected > 0
    assert stats.retries > 0            # transient faults were retried
    assert stats.fallback_ratio > 0.0   # poisoned traffic degraded
    assert stats.breaker_transitions > 0  # the poisoned circuit opened
    assert stats.n_closed == 0          # drain served everything


def _driver_cfg(**overrides) -> WorkloadConfig:
    base = dict(n_requests=2000, n_matrices=4, seed=2023)
    base.update(overrides)
    return WorkloadConfig(**base)


def test_driver_chaos_deterministic_and_accounted():
    cfg = _driver_cfg(
        deadline_s=DEADLINE_S,
        chaos=ChaosConfig(fault_rate=FAULT_RATE, seed=CHAOS_SEED,
                          poison_rank=3),
    )
    a = run_workload(cfg)
    b = run_workload(cfg)
    assert a.device_busy_s == b.device_busy_s
    assert a.retries == b.retries
    assert a.latencies_s == b.latencies_s  # bit-deterministic

    # every request ends in exactly one bucket
    assert (a.n_completed + a.n_rejected + a.n_deadline_exceeded
            + a.n_failed == a.n_requests)
    assert a.faults_injected > 0
    assert a.degraded_requests > 0
    assert a.breaker_transitions > 0


def test_chaos_off_costs_nothing():
    baseline = run_workload(_driver_cfg())
    hardened = run_workload(_driver_cfg(chaos=ChaosConfig(fault_rate=0.0)))

    drift = abs(hardened.throughput_rps - baseline.throughput_rps) \
        / baseline.throughput_rps
    emit("serve_resilience_parity", markdown_table(
        ("mode", "req/s (kernel)", "req/s (goodput)"), [
            ("baseline (no resilience)", f"{baseline.throughput_rps:,.0f}",
             f"{baseline.goodput_rps:,.0f}"),
            ("chaos wired, rate 0", f"{hardened.throughput_rps:,.0f}",
             f"{hardened.goodput_rps:,.0f}"),
        ]) + f"\n\nthroughput drift: {drift:.3%} (must be < 5%)")
    assert drift < 0.05
    assert hardened.faults_injected == 0
