"""Figure 9 — FP16 performance and speedups vs cuSPARSE (A100 + H800).

The paper reports DASP FP16 geomean speedups of 1.70x (A100) and 1.75x
(H800) over cuSPARSE-CSR, winning 2578 and 2576 of 2893 matrices, with
the best case on 'bibd_20_10' (all long rows).  Only cuSPARSE-CSR
supports FP16 among the baselines (Table 1), which the runner enforces.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import speedup_summary
from repro.bench import paper_vs_measured, results_path, save_csv
from repro.core import DASPMatrix, dasp_spmv
from repro.precision import cast_matrix_fp16


def test_fig09_fp16(benchmark, suite_fp16_a100, suite_fp16_h800,
                    bench_matrix):
    rows = []
    summaries = {}
    for dev, res, paper_geo, paper_wins in (
            ("A100", suite_fp16_a100, 1.70, 2578 / 2893),
            ("H800", suite_fp16_h800, 1.75, 2576 / 2893)):
        s = speedup_summary(res.times["DASP"], res.times["cuSPARSE-CSR"],
                            "cuSPARSE-CSR")
        summaries[dev] = (res, s)
        rows.append((f"{dev} geomean speedup", f"{paper_geo:.2f}x",
                     f"{s.geomean:.2f}x", "yes" if s.geomean > 1 else "NO"))
        rows.append((f"{dev} win rate", f"{paper_wins:.0%}",
                     f"{s.win_rate:.0%}", "yes" if s.win_rate > 0.5 else "NO"))
        rows.append((f"{dev} max speedup", "26x/66x", f"{s.maximum:.2f}x", "-"))
    emit("fig09_fp16", paper_vs_measured(rows))

    for dev, (res, s) in summaries.items():
        save_csv(results_path(f"fig09_fp16_{dev.lower()}.csv"),
                 ("matrix", "nnz", "cusparse_s", "dasp_s", "speedup"),
                 [(n, res.nnz[n], res.times["cuSPARSE-CSR"][n],
                   res.times["DASP"][n],
                   res.times["cuSPARSE-CSR"][n] / res.times["DASP"][n])
                  for n in res.times["DASP"]])

    # --- shape assertions -------------------------------------------
    for dev, (res, s) in summaries.items():
        assert s.geomean > 1.2, dev
        assert s.win_rate > 0.75, dev
        # only the two FP16-capable methods ran
        assert set(res.times) == {"cuSPARSE-CSR", "DASP"}
    # best speedup on the all-long-rows matrix family (paper: bibd_20_10)
    res_a, s_a = summaries["A100"]
    speedups = {n: res_a.times["cuSPARSE-CSR"][n] / res_a.times["DASP"][n]
                for n in res_a.times["DASP"]}
    best = max(speedups, key=speedups.get)
    assert speedups["bibd_20_10"] > np.median(list(speedups.values())), \
        f"bibd_20_10 should be a strong FP16 case (best was {best})"
    # H800's higher bandwidth gives faster absolute DASP times
    res_h, _ = summaries["H800"]
    faster = sum(res_h.times["DASP"][n] < res_a.times["DASP"][n]
                 for n in res_a.times["DASP"])
    assert faster > len(res_a.times["DASP"]) * 0.8

    half = cast_matrix_fp16(bench_matrix)
    dasp = DASPMatrix.from_csr(half)
    x16 = np.random.default_rng(0).uniform(-1, 1, half.shape[1]).astype(np.float16)
    benchmark(dasp_spmv, dasp, x16)
