"""Figure 10 + Section 4.2 headline — FP64 comparison of six methods (A100).

The paper reports DASP geomean speedups of 1.46x / 2.09x / 3.29x / 2.08x
/ 1.52x over CSR5 / TileSpMV / LSRB-CSR / cuSPARSE-BSR / cuSPARSE-CSR,
winning on 2403 / 2579 / 2251 / 2340 / 2344 of 2893 matrices.  We
regenerate the performance scatter and the five speedup series over the
synthetic collection, asserting the *shape*: DASP wins the majority
everywhere, all geomeans exceed 1, and LSRB-CSR is the weakest baseline.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import speedup_summary
from repro.bench import markdown_table, paper_vs_measured, results_path, save_csv
from repro.core import DASPMethod

PAPER_GEOMEANS = {
    "CSR5": 1.46,
    "TileSpMV": 2.09,
    "LSRB-CSR": 3.29,
    "cuSPARSE-BSR": 2.08,
    "cuSPARSE-CSR": 1.52,
}
PAPER_WIN_RATES = {
    "CSR5": 2403 / 2893,
    "TileSpMV": 2579 / 2893,
    "LSRB-CSR": 2251 / 2893,
    "cuSPARSE-BSR": 2340 / 2893,
    "cuSPARSE-CSR": 2344 / 2893,
}


def test_fig10_fp64(benchmark, collection_fp64, bench_matrix, bench_vector):
    res = collection_fp64
    dasp_times = res.times["DASP"]
    summaries = {
        base: speedup_summary(dasp_times, res.times[base], base)
        for base in PAPER_GEOMEANS
    }

    rows = []
    for base, s in summaries.items():
        rows.append((f"geomean speedup vs {base}",
                     f"{PAPER_GEOMEANS[base]:.2f}x", f"{s.geomean:.2f}x",
                     "yes" if s.geomean > 1.0 else "NO"))
        rows.append((f"win rate vs {base}",
                     f"{PAPER_WIN_RATES[base]:.0%}", f"{s.win_rate:.0%}",
                     "yes" if s.win_rate > 0.5 else "NO"))
        rows.append((f"max speedup vs {base}", "-", f"{s.maximum:.2f}x", "-"))
    emit("fig10_fp64", paper_vs_measured(rows))

    # Persist the full scatter (GFlops per matrix per method).
    methods = list(res.times)
    scatter = [(name, res.nnz[name],
                *(2.0 * res.nnz[name] / res.times[m][name] / 1e9
                  for m in methods))
               for name in dasp_times]
    save_csv(results_path("fig10_fp64.csv"),
             ("matrix", "nnz", *methods), scatter)

    # --- shape assertions -------------------------------------------
    for base, s in summaries.items():
        assert s.geomean > 1.0, f"DASP must beat {base} on geomean"
        assert s.win_rate > 0.6, f"DASP must win the majority vs {base}"
        # magnitudes within a reasonable band of the paper's numbers
        assert 0.5 * PAPER_GEOMEANS[base] < s.geomean < 2.5 * PAPER_GEOMEANS[base]
    # LSRB-CSR is the weakest of the CSR-like baselines (paper ordering)
    assert summaries["LSRB-CSR"].geomean > summaries["CSR5"].geomean
    assert summaries["LSRB-CSR"].geomean > summaries["cuSPARSE-CSR"].geomean
    # the structured-format baselines lose big on their worst cases
    assert summaries["cuSPARSE-BSR"].maximum > 3.0

    method = DASPMethod()
    plan = method.prepare(bench_matrix)
    benchmark(method.run, plan, bench_vector)
