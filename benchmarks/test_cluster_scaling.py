"""Cluster scaling benchmark — N replicas vs one, with failover.

Not a paper figure: quantifies the `repro.cluster` fabric on the
deterministic virtual-time Zipf workload.  Three gates:

* **parity** — the N=1 cluster is bit-identical to the single-replica
  driver (same RNG streams, same event ordering), so everything the
  scaling numbers say is attributable to placement, not to a different
  simulator;
* **scale-out** — at N=4 (offered rate scaled to 4x the single-replica
  saturating rate) modeled aggregate throughput is >= 3x the N=1 run;
* **failover** — the 3x holds even with one replica fault-injected
  into permanent kernel errors: health marks it down, its traffic
  reroutes along the ring preference walk, and >= 99% of offered
  requests still complete in deadline with no lost futures.

Each gate run appends a perf-trajectory record to
``results/BENCH_cluster.json`` (modeled throughput, p50/p99 latency,
wall-clock), so CI keeps a diffable history.
"""

import time

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.cluster import ClusterConfig, run_cluster_workload
from repro.matrices import synthetic_collection
from repro.serve import WorkloadConfig, run_workload

N_REQUESTS = 50_000
N_MATRICES = 8
SEED = 3
DEADLINE_S = 0.02


def _cfg(**overrides) -> ClusterConfig:
    base = dict(n_requests=N_REQUESTS, seed=SEED, deadline_s=DEADLINE_S,
                entries=synthetic_collection(N_MATRICES, seed=5))
    base.update(overrides)
    return ClusterConfig(**base)


def _timed(cfg):
    t0 = time.perf_counter()
    stats = run_cluster_workload(cfg)
    return stats, time.perf_counter() - t0


def test_cluster_single_replica_parity():
    """N=1 must be the single-replica driver, bit for bit."""
    kw = dict(n_requests=4000, seed=SEED, deadline_s=DEADLINE_S,
              entries=synthetic_collection(N_MATRICES, seed=5))
    single = run_workload(WorkloadConfig(**kw))
    cluster = run_cluster_workload(ClusterConfig(n_replicas=1, **kw))
    (replica,) = cluster.replicas.values()
    assert single.latencies_s == replica.latencies_s
    assert single.n_completed == replica.n_completed
    assert single.duration_s == replica.duration_s
    assert single.device_busy_s == replica.device_busy_s


def test_cluster_scaling_with_failover():
    one, wall_one = _timed(_cfg(n_replicas=1))
    four, wall_four = _timed(_cfg(n_replicas=4, fail_replica=3))

    ratio = four.throughput_rps / one.throughput_rps
    pct_one = one.latency_percentiles((50.0, 99.0))
    pct_four = four.latency_percentiles((50.0, 99.0))

    rows = []
    for label, stats, pct, wall in (
            ("N=1", one, pct_one, wall_one),
            ("N=4, one replica failing", four, pct_four, wall_four)):
        rows.append((label, f"{stats.n_completed:,}",
                     f"{stats.throughput_rps:,.0f}",
                     f"{stats.in_deadline_fraction:.4f}",
                     f"{pct[50.0] * 1e6:.1f} / {pct[99.0] * 1e6:.1f}",
                     f"{stats.n_failover:,}", f"{wall:.1f}"))
    emit("cluster_scaling", markdown_table(
        ("cluster", "completed", "modeled req/s", "in-deadline",
         "p50/p99 (us)", "failovers", "wall s"), rows)
        + f"\n\nN=4 vs N=1 modeled aggregate throughput: {ratio:.2f}x "
        f"(target >= 3x with one replica fault-injected)")

    for n, stats, pct, wall in ((1, one, pct_one, wall_one),
                                (4, four, pct_four, wall_four)):
        record_bench("cluster", {
            "replicas": n, "seed": SEED,
            "requests": stats.n_requests,
            "completed": stats.n_completed,
            "throughput_rps": stats.throughput_rps,
            "in_deadline_fraction": stats.in_deadline_fraction,
            "p50_latency_s": pct[50.0], "p99_latency_s": pct[99.0],
            "failovers": stats.n_failover,
            "fail_replica": 3 if n == 4 else None,
            "wall_s": round(wall, 3),
        })

    # --- the acceptance gates -----------------------------------------
    # scale-out: >= 3x aggregate modeled throughput at N=4, even with
    # replica r3 fault-injected into permanent kernel errors
    assert ratio >= 3.0, f"N=4 throughput only {ratio:.2f}x N=1"
    # availability: >= 99% of offered requests answered in deadline
    assert four.in_deadline_fraction >= 0.99, \
        f"in-deadline fraction {four.in_deadline_fraction:.4f} < 0.99"
    # the failure was real and was routed around
    assert four.n_failover > 0
    assert four.n_transitions_down >= 1
    assert not four.health["r3"]["healthy"]
    fair = N_REQUESTS / 4
    assert four.routed["r3"] < 0.5 * fair
    # no lost futures: every offered request resolved one way
    assert (four.n_completed + four.n_rejected + four.n_failed
            + four.n_deadline_exceeded) == four.n_requests
