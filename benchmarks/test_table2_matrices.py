"""Table 2 — the 21 representative matrices.

Regenerates the matrix roster with both the paper's published sizes and
our scaled synthetic stand-ins, and times suite generation.
"""

from benchmarks.conftest import emit
from repro.bench import markdown_table
from repro.matrices import representative_suite


def test_table2_matrices(benchmark):
    entries = benchmark(representative_suite)
    rows = []
    for e in entries:
        m = e.matrix()
        rows.append((
            e.name, e.family,
            f"{e.paper_shape[0]}x{e.paper_shape[1]}", f"{e.paper_nnz:,}",
            f"{m.shape[0]}x{m.shape[1]}", f"{m.nnz:,}"))
    table = markdown_table(
        ("matrix", "family", "paper size", "paper nnz",
         "scaled size", "scaled nnz"), rows)
    emit("table2_matrices", table)

    assert len(entries) == 21
    names = {e.name for e in entries}
    # spot-check Table 2 metadata against the paper
    by_name = {e.name: e for e in entries}
    assert by_name["pwtk"].paper_nnz == 11524432
    assert by_name["mip1"].paper_shape == (66463, 66463)
    assert by_name["circuit5M"].paper_nnz == 59524291
    assert "cop20k_A" in names and "conf5_4-8x8-10" in names
    # every stand-in is non-trivial
    for e in entries:
        assert e.matrix().nnz > 1000, e.name
