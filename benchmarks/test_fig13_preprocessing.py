"""Figure 13 — preprocessing (format conversion) cost vs matrix size.

The paper's shape: DASP's conversion is almost always cheaper than
TileSpMV's and cuSPARSE's, and cheaper than CSR5's below roughly
10^4.5 nonzeros (CSR5 converts in-place on the GPU, so it wins for large
matrices).  We sweep FEM matrices across sizes and check the ordering
and the crossover; we also report this implementation's real wall-clock
``prepare`` times.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, results_path, run_comparison, save_csv
from repro.core import DASPMatrix
from repro.matrices import fem_blocked
from repro.matrices.collection import CollectionEntry

SIZES = (2_000, 6_000, 20_000, 60_000, 200_000, 600_000)
METHODS = ("CSR5", "TileSpMV", "cuSPARSE-BSR", "DASP")


def _entries():
    out = []
    for i, nnz in enumerate(SIZES):
        m = max(64, nnz // 30)
        out.append(CollectionEntry(
            f"fem_{nnz}", "fem", (lambda mm=m, s=i: fem_blocked(mm, 30, seed=s))))
    return out


def test_fig13_preprocessing(benchmark, bench_matrix):
    res = run_comparison(_entries(), device="A100", methods=METHODS)
    names = sorted(res.nnz, key=res.nnz.get)

    rows = [(res.nnz[n],
             *(f"{res.preprocess[m][n] * 1e6:.1f}" for m in METHODS))
            for n in names]
    table = markdown_table(("nnz", *(f"{m} (us)" for m in METHODS)), rows)
    wall = [(res.nnz[n], *(f"{res.wall_prepare[m][n] * 1e3:.2f}"
                           for m in METHODS)) for n in names]
    table += "\n\nthis implementation's wall-clock prepare (ms):\n"
    table += markdown_table(("nnz", *METHODS), wall)
    emit("fig13_preprocessing", table)
    save_csv(results_path("fig13_preprocessing.csv"),
             ("nnz", *METHODS),
             [(res.nnz[n], *(res.preprocess[m][n] for m in METHODS))
              for n in names])

    pre = res.preprocess
    small = names[0]          # ~2e3 nnz
    large = names[-1]         # ~6e5 nnz
    # DASP cheapest on small matrices (paper: faster than CSR5 below ~3e4)
    assert pre["DASP"][small] < pre["CSR5"][small]
    # CSR5's GPU conversion wins for large matrices
    assert pre["CSR5"][large] < pre["DASP"][large]
    # a crossover exists in between
    crossover = [n for n in names
                 if pre["DASP"][n] > pre["CSR5"][n]]
    assert crossover, "expected DASP/CSR5 preprocessing crossover"
    # DASP always cheaper than TileSpMV and cuSPARSE-BSR (paper claim)
    for n in names:
        assert pre["DASP"][n] < pre["TileSpMV"][n], n
        assert pre["DASP"][n] < pre["cuSPARSE-BSR"][n], n
    # preprocessing grows with nnz for every method
    for m in METHODS:
        series = [pre[m][n] for n in names]
        assert series[-1] >= series[0]

    benchmark(DASPMatrix.from_csr, bench_matrix)
