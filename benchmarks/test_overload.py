"""Overload-control benchmark — graceful degradation under pressure.

Not a paper figure: quantifies the `repro.overload` layer on the
deterministic virtual-time cluster driver.  The headline scenario runs
a 4-replica cluster at **130% of modeled aggregate capacity** with one
replica's device modeled 4x slow (a live straggler) and a 5% transient
fault mix, and gates that the cluster degrades *by policy* rather than
by collapse:

* **interactive traffic is protected** — >= 99% of accepted
  interactive requests complete in deadline, because admission control
  sheds batch-priority work first (the ``batch_reserve`` floor);
* **shedding is typed and immediate** — an admission-shed request
  costs a counter bump, never a queue slot (the wall-clock companion
  test pins the typed :class:`~repro.overload.AdmissionRejectedError`
  on the real server path);
* **nothing is lost** — every offered request has exactly one terminal
  outcome (``lost_requests == 0``) even with hedge shadows in flight;
* **retries stay bounded** — cluster-wide retries never exceed the
  shared budget's ``initial + ratio x offered`` invariant;
* **hedging wins the tail** — duplicate requests against the straggler
  win >= 1% of offered traffic (in practice ~8%);
* **the layer is free when off** — with no ``OverloadConfig`` the run
  is bit-identical to one with every mechanism disabled.

Each scenario appends a perf-trajectory record to
``results/BENCH_overload.json`` so nightly CI keeps a diffable
history across seeds x {overload, slow_replica, partition}.
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.cluster import ClusterConfig, run_cluster_workload
from repro.gpu import get_device
from repro.matrices import synthetic_collection
from repro.overload import (
    AdmissionConfig,
    HedgeConfig,
    OverloadConfig,
    RetryBudgetConfig,
)
from repro.serve import ChaosConfig
from repro.serve.driver import _matrix_pool, _ModeledDevice, auto_rate

N_REQUESTS = 6_000
N_REPLICAS = 4
DEADLINE_S = 0.004
OVERLOAD = 1.3          # offered rate as a multiple of modeled capacity
ADMIT_FRACTION = 0.55   # admission rate as a multiple of modeled capacity
SEED = int(os.environ.get("OVERLOAD_SEED", "3"))


def _capacity_rps(cfg: ClusterConfig) -> float:
    """Modeled aggregate saturating rate of the cluster's pool."""
    pool = _matrix_pool(cfg)
    modeled = _ModeledDevice(get_device(cfg.device),
                             np.dtype(cfg.dtype).itemsize * 8,
                             workers=cfg.shard_workers)
    return cfg.n_replicas * auto_rate(pool, modeled, replicas=1)


def _overload_cfg(capacity: float) -> OverloadConfig:
    return OverloadConfig(
        admission=AdmissionConfig(rate_rps=ADMIT_FRACTION * capacity,
                                  burst=64.0, batch_reserve=0.25),
        retry_budget=RetryBudgetConfig(),
        hedge=HedgeConfig(),
        batch_fraction=0.3)


def _record(scenario: str, stats, wall: float, **extra) -> None:
    record = {
        "scenario": scenario, "seed": SEED,
        "replicas": stats.n_replicas,
        "offered": stats.n_offered,
        "shed": stats.n_shed,
        "link_failed": stats.n_link_failed,
        "completed": stats.n_completed,
        "deadline_exceeded": stats.n_deadline_exceeded,
        "failed": stats.n_failed,
        "lost_requests": stats.lost_requests,
        "hedges_issued": stats.n_hedges_issued,
        "hedges_won": stats.n_hedges_won,
        "hedges_wasted": stats.n_hedges_wasted,
        "retries": stats.n_retries,
        "retry_budget_granted": stats.retry_budget_granted,
        "retry_budget_denied": stats.retry_budget_denied,
        "priorities": stats.priorities,
        "wall_s": round(wall, 3),
    }
    record.update(extra)
    record_bench("overload", record)


def test_overload_with_slow_replica():
    """130% offered load + one 4x-slow replica + 5% transient faults."""
    base = ClusterConfig(n_requests=N_REQUESTS, n_replicas=N_REPLICAS,
                         seed=SEED, deadline_s=DEADLINE_S)
    capacity = _capacity_rps(base)
    cfg = ClusterConfig(
        n_requests=N_REQUESTS, n_replicas=N_REPLICAS, seed=SEED,
        deadline_s=DEADLINE_S, rate_rps=OVERLOAD * capacity,
        overload=_overload_cfg(capacity), slow_replica=1,
        chaos=ChaosConfig(fault_rate=0.05, seed=SEED))
    t0 = time.perf_counter()
    stats = run_cluster_workload(cfg)
    wall = time.perf_counter() - t0

    interactive = stats.in_deadline_by_priority("interactive")
    p = stats.priorities
    shed_rate = {k: p[k]["shed"] / p[k]["offered"] for k in p}
    rb = cfg.overload.retry_budget
    rows = [
        ("offered (130% of capacity)", f"{stats.n_offered:,}"),
        ("shed (interactive / batch)",
         f"{p['interactive']['shed']:,} / {p['batch']['shed']:,}"),
        ("completed", f"{stats.n_completed:,}"),
        ("interactive in-deadline", f"{interactive:.4f}"),
        ("batch in-deadline",
         f"{stats.in_deadline_by_priority('batch'):.4f}"),
        ("hedges issued / won / wasted",
         f"{stats.n_hedges_issued:,} / {stats.n_hedges_won:,} / "
         f"{stats.n_hedges_wasted:,}"),
        ("retries / budget granted",
         f"{stats.n_retries:,} / {stats.retry_budget_granted:,}"),
        ("lost requests", f"{stats.lost_requests:,}"),
        ("wall", f"{wall:.1f} s"),
    ]
    emit("overload_slow_replica",
         markdown_table(("metric", "value"), rows))
    _record("overload_slow_replica", stats, wall,
            interactive_in_deadline=interactive)

    # --- the acceptance gates -----------------------------------------
    # interactive traffic the cluster accepted is answered in deadline
    assert interactive >= 0.99, \
        f"interactive in-deadline {interactive:.4f} < 0.99"
    # shedding happened, and took batch traffic first
    assert stats.n_shed > 0
    assert shed_rate["batch"] > shed_rate["interactive"]
    # zero lost futures: every offered request has one terminal outcome
    assert stats.lost_requests == 0
    # cluster-wide retries bounded by the shared budget invariant
    assert stats.retry_budget_granted <= \
        rb.initial + rb.ratio * stats.n_offered
    assert stats.n_retries <= stats.retry_budget_granted
    # hedging wins >= 1% of offered traffic off the straggler's tail
    assert stats.n_hedges_won >= 0.01 * stats.n_offered, \
        f"hedges won only {stats.n_hedges_won} of {stats.n_offered}"
    assert stats.n_hedges_won <= stats.n_hedges_issued


def test_partition_chaos_deterministic():
    """A mid-run router<->replica partition heals without losing any
    request, and the whole scenario replays bit-identically."""
    cfg = ClusterConfig(n_requests=3_000, n_replicas=N_REPLICAS,
                        seed=SEED, deadline_s=0.02,
                        entries=synthetic_collection(8, seed=5),
                        partition_replica=0,
                        partition_window=(0.25, 0.75))
    t0 = time.perf_counter()
    stats = run_cluster_workload(cfg)
    wall = time.perf_counter() - t0
    again = run_cluster_workload(cfg)

    _record("partition", stats, wall,
            transitions_down=stats.n_transitions_down,
            transitions_up=stats.n_transitions_up)

    merged = [lat for rid in sorted(stats.replicas)
              for lat in stats.replicas[rid].latencies_s]
    merged2 = [lat for rid in sorted(again.replicas)
               for lat in again.replicas[rid].latencies_s]
    assert merged == merged2, "partition scenario is not deterministic"
    assert stats.n_transitions_down >= 1, "partition never tripped health"
    assert stats.n_transitions_up >= 1, "replica never recovered"
    assert stats.lost_requests == 0


def test_disabled_overload_is_bit_identical():
    """The overload layer must be free when off: a config with every
    mechanism disabled changes nothing vs no config at all."""
    kw = dict(n_requests=3_000, n_replicas=N_REPLICAS, seed=SEED,
              deadline_s=0.02, entries=synthetic_collection(8, seed=5))
    t0 = time.perf_counter()
    plain = run_cluster_workload(ClusterConfig(**kw))
    wall = time.perf_counter() - t0
    noop = run_cluster_workload(ClusterConfig(**kw,
                                              overload=OverloadConfig()))

    for rid in plain.replicas:
        assert plain.replicas[rid].latencies_s == \
            noop.replicas[rid].latencies_s, f"{rid} latencies diverged"
    assert plain.n_completed == noop.n_completed
    assert plain.n_deadline_exceeded == noop.n_deadline_exceeded
    assert plain.routed == noop.routed
    _record("disabled_parity", plain, wall)


def test_admission_shed_is_typed_and_fast():
    """On the real (wall-clock) server, an admission shed is a typed
    error raised before the request costs a queue slot."""
    import pytest

    from repro.overload import AdmissionRejectedError
    from repro.serve import QueueFullError, SpMVServer
    from tests.conftest import random_csr

    rng = np.random.default_rng(SEED)
    csr = random_csr(64, 64, rng)
    with SpMVServer(workers=1,
                    admission=AdmissionConfig(rate_rps=1.0,
                                              burst=1.0)) as server:
        fp = server.register(csr)
        x = np.zeros(csr.shape[1])
        assert server.submit(fp, x).result(timeout=30) is not None
        t0 = time.perf_counter()
        with pytest.raises(AdmissionRejectedError) as exc_info:
            server.submit(fp, x)
        shed_wall = time.perf_counter() - t0
        assert shed_wall < 0.1, f"shed took {shed_wall:.3f}s, not fast"
        # typed: an admission shed is NOT queue-full backpressure
        assert not isinstance(exc_info.value, QueueFullError)
        assert server.stats.admission_rejected == 1
