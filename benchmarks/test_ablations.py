"""Ablation benchmarks for DASP's design choices (not a paper figure).

DESIGN.md calls out four load-bearing choices; each ablation quantifies
one of them with the cost model:

* MAX_LEN = 256 (the long/medium boundary, sized to one thread block);
* threshold = 0.75 (regular-block occupancy);
* piecing short rows (vs padding every short row to length 4);
* the medium-row descending sort (vs natural order).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table
from repro.core import (
    DASPMatrix,
    DASPMethod,
    classify_rows,
    dasp_spmv,
    tune_max_len,
    tune_threshold,
)
from repro.core.short_rows import build_short_rows
from repro.gpu.mma import FP64_M8N8K4
from repro.matrices import suite_by_name


def test_ablation_max_len(benchmark, suite_fp64):
    rows = []
    best_counts = {}
    for name in ("wiki-Talk", "mip1", "eu-2005", "dc2"):
        csr = suite_fp64.matrices[name]
        result = tune_max_len(csr, "A100")
        best_counts[name] = result.best_value
        rows.append((name, *(f"{result.times[c] * 1e6:.1f}"
                             for c in sorted(result.times)), result.best_value))
    emit("ablation_max_len",
         markdown_table(("matrix", *(str(c) for c in sorted(result.times)),
                         "best"), rows))
    # the paper's 256 is competitive: never more than 40% off the best
    for name in best_counts:
        csr = suite_fp64.matrices[name]
        r = tune_max_len(csr, "A100", candidates=(256, best_counts[name]))
        assert r.times[256] <= 1.4 * r.best_time, name

    benchmark(tune_max_len, suite_fp64.matrices["dc2"], "A100")


def test_ablation_threshold(benchmark, suite_fp64):
    rows = []
    for name in ("cant", "mac_econ_fwd500", "eu-2005"):
        csr = suite_fp64.matrices[name]
        result = tune_threshold(csr, "A100")
        rows.append((name, *(f"{result.times[c] * 1e6:.1f}"
                             for c in sorted(result.times)), result.best_value))
        # sanity: the paper's 0.75 stays within 30% of the sweep's best
        assert result.times[0.75] <= 1.3 * result.best_time, name
    emit("ablation_threshold",
         markdown_table(("matrix", *(str(c) for c in sorted(result.times)),
                         "best"), rows))
    benchmark(tune_threshold, suite_fp64.matrices["cant"], "A100")


def test_ablation_short_row_piecing(benchmark, suite_fp64):
    """Piecing 1&3 / 2&2 rows vs naively padding every short row to
    length 4: on a rel19-style matrix (rows of length 1-3) piecing cuts
    the stored slots dramatically — the paper's 0.85% fill rate story."""
    csr = suite_by_name("rel19").matrix()
    cls = classify_rows(csr)
    pieced = build_short_rows(csr, cls.short, FP64_M8N8K4)

    # naive alternative: every short row becomes its own length-4 row
    naive = build_short_rows(
        csr, {1: np.zeros(0, np.int64), 2: np.zeros(0, np.int64),
              3: np.zeros(0, np.int64),
              4: np.concatenate([cls.short[k] for k in (1, 2, 3, 4)])},
        FP64_M8N8K4)
    orig = pieced.orig_nnz  # the true nonzero count
    emit("ablation_piecing", markdown_table(
        ("variant", "stored slots", "stored / real nnz"),
        [("pieced (paper)", pieced.padded_nnz,
          f"{pieced.padded_nnz / orig:.3f}"),
         ("pad-all-to-4", naive.padded_nnz,
          f"{naive.padded_nnz / orig:.3f}")]))
    assert pieced.padded_nnz < 0.8 * naive.padded_nnz
    assert pieced.padded_nnz / orig < 1.4
    x = np.random.default_rng(0).standard_normal(csr.shape[1])
    benchmark(dasp_spmv, DASPMatrix.from_csr(csr), x)


def test_ablation_medium_sort(benchmark, suite_fp64):
    """Sorting medium rows descending (the paper's choice) produces fewer
    padded regular slots than packing rows in natural order, because
    similar-length rows share row-blocks."""
    from repro.core.medium_rows import build_medium_rows

    name = "eu-2005"
    csr = suite_fp64.matrices[name]
    cls = classify_rows(csr)
    sorted_plan = build_medium_rows(csr, cls.medium, FP64_M8N8K4)
    natural = np.sort(cls.medium)  # natural row order, unsorted by length
    natural_plan = build_medium_rows(csr, natural, FP64_M8N8K4)

    def padded_slots(plan):
        real = np.count_nonzero(plan.reg_val)
        return plan.reg_nnz - real

    emit("ablation_medium_sort", markdown_table(
        ("variant", "regular slots", "padding slots", "irregular nnz"),
        [("sorted (paper)", sorted_plan.reg_nnz, padded_slots(sorted_plan),
          sorted_plan.irreg_nnz),
         ("natural order", natural_plan.reg_nnz, padded_slots(natural_plan),
          natural_plan.irreg_nnz)]))
    assert padded_slots(sorted_plan) <= padded_slots(natural_plan)

    x = np.random.default_rng(1).standard_normal(csr.shape[1])
    benchmark(dasp_spmv, DASPMatrix.from_csr(csr), x)


def test_ablation_engine_equivalence(benchmark):
    """The lane-accurate engine validates the vectorized one; report the
    cost of that fidelity (the vectorized engine is the usable one)."""
    csr = suite_by_name("scircuit").matrix().row_slice(np.arange(400))
    dasp = DASPMatrix.from_csr(csr)
    x = np.random.default_rng(2).standard_normal(csr.shape[1])
    y_warp = dasp_spmv(dasp, x, engine="warp")
    y_vec = benchmark(dasp_spmv, dasp, x)
    assert np.allclose(y_warp, y_vec, rtol=1e-12)
