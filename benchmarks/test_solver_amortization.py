"""Section 4.4's amortization claim — preprocessing pays off in solvers.

The paper concedes DASP's conversion can cost more than CSR5's for large
matrices but argues it "is deemed acceptable if more SpMV kernel calls
are needed in an iterative solver".  This benchmark runs CG on an SPD
FEM system with DASP and with cuSPARSE-CSR / CSR5 operators and compares
the modeled end-to-end cost (preprocess + all SpMVs): DASP must win
end-to-end once the iteration count is realistic.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.baselines import CSR5Method, MergeCSRMethod
from repro.bench import markdown_table
from repro.core import DASPMethod
from repro.formats import CSRMatrix
from repro.matrices import fem_blocked
from repro.solvers import SpMVOperator, conjugate_gradient


def make_spd(m: int, seed: int) -> CSRMatrix:
    b = fem_blocked(m, 20, seed=seed)
    dense = b.to_dense()
    sym = dense + dense.T
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(sym)


def test_solver_amortization(benchmark):
    rng = np.random.default_rng(5)
    A = make_spd(700, seed=2)
    b = rng.standard_normal(A.shape[0])

    rows = []
    totals = {}
    iters = {}
    for method in (DASPMethod(), CSR5Method(), MergeCSRMethod()):
        op = SpMVOperator(A, method=method)
        res = conjugate_gradient(op, b, tol=1e-10)
        assert res.converged, method.name
        cost = op.modeled_cost("A100")
        totals[method.name] = cost["total_s"]
        iters[method.name] = res.iterations
        rows.append((method.name, res.iterations,
                     f"{cost['preprocess_s'] * 1e6:.0f}",
                     f"{cost['per_spmv_s'] * 1e6:.2f}",
                     f"{cost['total_s'] * 1e6:.0f}"))
    emit("solver_amortization", markdown_table(
        ("operator", "CG iterations", "preprocess us", "per-SpMV us",
         "total us"), rows))

    # identical math -> identical iteration counts
    assert len(set(iters.values())) == 1
    # end-to-end, DASP beats both baselines despite costlier preprocessing
    assert totals["DASP"] < totals["CSR5"]
    assert totals["DASP"] < totals["cuSPARSE-CSR"]

    op = SpMVOperator(A)
    benchmark(op.apply, b)
