"""Warm-start benchmark — cold rebuild vs `.daspz` artifact loads.

Not a paper figure: quantifies the `repro.store` subsystem.  The paper's
Figure 13 economics (preprocessing costs tens-to-hundreds of SpMVs)
make plan *durability* valuable: a server that persists its plans can
restart without re-paying the CSR -> DASP conversion for any matrix it
has served before.

Two identical virtual-time workloads over a 20-matrix synthetic suite:

* **cold** — an empty store: every first-touch pays the modeled rebuild
  (and write-through publishes the artifact);
* **warm** — the same traffic restarted over the populated store with
  ``warm_start=True``: every plan is preloaded from disk before traffic
  begins.

Target: the warm run's first response is >= 3x faster than the cold
run's (the first request no longer waits on preprocessing), and the
modeled *and* wall-clock load costs undercut the rebuilds they replace.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.core import DASPMatrix
from repro.matrices import synthetic_collection
from repro.serve import WorkloadConfig, matrix_fingerprint, run_workload
from repro.store import PlanStore

N_MATRICES = 20
N_REQUESTS = 2400
SEED = 2023


def _cfg(store, **overrides) -> WorkloadConfig:
    base = dict(n_requests=N_REQUESTS, seed=SEED, zipf_s=0.7,
                entries=synthetic_collection(N_MATRICES), store=store)
    base.update(overrides)
    return WorkloadConfig(**base)


@pytest.fixture(scope="module")
def cold_then_warm(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("plan_store")
    cold = run_workload(_cfg(store_dir))
    warm = run_workload(_cfg(store_dir, warm_start=True))
    return cold, warm, store_dir


def test_warm_start_first_response(cold_then_warm):
    cold, warm, _ = cold_then_warm
    first_cold = cold.latencies_s[0]
    first_warm = warm.latencies_s[0]
    speedup = first_cold / first_warm

    emit("store_warmstart", markdown_table(
        ("run", "first response (us)", "preprocess ms", "store activity",
         "goodput req/s"),
        [("cold (rebuild)", f"{first_cold * 1e6:.1f}",
          f"{cold.preprocess_s * 1e3:.3f}",
          f"{cold.store_writes} writes", f"{cold.goodput_rps:,.0f}"),
         ("warm (.daspz load)", f"{first_warm * 1e6:.1f}",
          f"{warm.preprocess_s * 1e3:.3f}",
          f"{warm.store_loads} loads", f"{warm.goodput_rps:,.0f}")])
        + f"\n\nwarm-start first-response speedup: {speedup:.2f}x "
          f"(target >= 3x)")
    record_bench("store", {
        "first_response_speedup": speedup,
        "warm_goodput_rps": warm.goodput_rps,
        "cold_goodput_rps": cold.goodput_rps,
        "store_loads": warm.store_loads,
    })

    # the tentpole claim: a restart over the populated store answers
    # its first request >= 3x sooner than a cold rebuild
    assert speedup >= 3.0, f"warm-start speedup {speedup:.2f}x < 3x"
    # identical traffic; cold sheds under first-touch preprocessing
    # stalls, so warm completes at least as many requests
    assert warm.n_completed >= cold.n_completed
    assert warm.preprocess_s < cold.preprocess_s
    assert warm.goodput_rps > cold.goodput_rps


def test_warm_start_store_accounting(cold_then_warm):
    cold, warm, _ = cold_then_warm
    # cold published one artifact per matrix that saw traffic; the warm
    # preload read back exactly those artifacts and rebuilt nothing
    assert cold.store_writes > 0 and cold.store_loads == 0
    assert warm.store_loads == cold.store_writes
    assert warm.store_writes == 0 and warm.store_quarantined == 0
    # warm plan acquisition was pure loads: the modeled load total IS
    # the preprocess total, and it undercuts the rebuilds it replaced
    assert warm.store_load_modeled_s == pytest.approx(warm.preprocess_s)
    assert warm.store_load_modeled_s < cold.preprocess_s


def test_measured_load_beats_rebuild(cold_then_warm):
    """Wall-clock validation of the tier's cost model: reading the 20
    artifacts back (mmap + CRC of every byte) is faster than re-running
    the 20 CSR -> DASP conversions."""
    _, _, store_dir = cold_then_warm
    store = PlanStore(store_dir)
    entries = synthetic_collection(N_MATRICES)
    csrs = [e.matrix() for e in entries]

    t0 = time.perf_counter()
    for csr in csrs:
        DASPMatrix.from_csr(csr)
    rebuild_wall = time.perf_counter() - t0

    loaded = 0
    t0 = time.perf_counter()
    for csr in csrs:
        got = store.load(matrix_fingerprint(csr), gate=False)
        loaded += got is not None
    load_wall = time.perf_counter() - t0

    emit("store_load_wallclock",
         f"measured over {loaded} artifacts: load {load_wall * 1e3:.1f} ms "
         f"vs rebuild {rebuild_wall * 1e3:.1f} ms "
         f"({rebuild_wall / load_wall:.2f}x)")
    assert loaded > 0
    assert load_wall < rebuild_wall


@pytest.mark.slow
def test_warm_start_large_sweep(tmp_path_factory):
    """Nightly-scale sweep: a larger pool and heavier traffic keep the
    warm-start advantage (and determinism) at collection size."""
    store_dir = tmp_path_factory.mktemp("plan_store_large")
    entries = synthetic_collection(60)
    cfg = WorkloadConfig(n_requests=6000, seed=7, zipf_s=0.6,
                         entries=entries, store=store_dir)
    cold = run_workload(cfg)
    warm = run_workload(WorkloadConfig(n_requests=6000, seed=7, zipf_s=0.6,
                                       entries=entries, store=store_dir,
                                       warm_start=True))
    assert warm.latencies_s[0] * 3 <= cold.latencies_s[0]
    assert warm.preprocess_s < cold.preprocess_s
    assert warm.store_loads == cold.store_writes
    assert warm.n_completed >= cold.n_completed
    emit("store_warmstart_large",
         f"60-matrix sweep: first response {cold.latencies_s[0] * 1e6:.1f}us "
         f"cold -> {warm.latencies_s[0] * 1e6:.1f}us warm; preprocess "
         f"{cold.preprocess_s * 1e3:.2f}ms -> {warm.preprocess_s * 1e3:.2f}ms")
