"""Table 1 — experimental platforms and evaluated algorithms.

Regenerates the platform/method summary of the paper's Table 1 from the
simulated device specs and the method registry, and times one DASP SpMV
as the representative kernel.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.baselines import PAPER_METHODS, paper_methods
from repro.bench import markdown_table
from repro.core import DASPMatrix, dasp_spmv
from repro.gpu import A100, H800


def test_table1_platform(benchmark, bench_matrix, bench_vector):
    rows = []
    for dev in (A100, H800):
        rows.append((dev.name, dev.arch,
                     f"{dev.fp64_tensor_tflops} TFlops FP64-TC",
                     f"{dev.fp16_tensor_tflops} TFlops FP16-TC",
                     f"{dev.mem_bw_gbs} GB/s"))
    table = markdown_table(
        ("device", "arch", "FP64 tensor", "FP16 tensor", "bandwidth"), rows)
    table += "\n\nAlgorithms: " + ", ".join(PAPER_METHODS)
    emit("table1_platform", table)

    # Table 1 invariants from the paper.
    assert A100.fp64_tensor_tflops == 19.5
    assert A100.fp16_tensor_tflops == 312.0
    assert H800.fp16_tensor_tflops == 756.0
    assert A100.mem_bw_gbs == 1555.0 and H800.mem_bw_gbs == 2048.0
    assert len(paper_methods()) == 6

    dasp = DASPMatrix.from_csr(bench_matrix)
    y = benchmark(dasp_spmv, dasp, bench_vector)
    assert np.allclose(y, bench_matrix.matvec(bench_vector), rtol=1e-9)
