"""Large-k SpMM gate: the tuner must earn its strategies.

The paper's serving tier stops at ``k = MMA_N = 8`` right-hand sides.
This gate covers the large-k extension (:mod:`repro.core.spmm_block`)
on the medium/irregular suite:

* at ``k = 128`` the tuner-chosen strategy (tiled or reordered) must
  model >= 2x the throughput of today's looped-batches baseline;
* the row-reordering pass must measurably cut MMA tile padding on at
  least one matrix class while staying bitwise-invisible in the output;
* every strategy's output is bitwise the column-wise ``dasp_spmv``.

The slow-marked nightly sweep runs k in {8, 32, 128, 512} x 3 RHS
seeds, times the executions, and appends perf-trajectory records to
``results/BENCH_spmm_largek.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench import markdown_table
from repro.core import DASPMatrix, dasp_spmv
from repro.core.spmm_block import (
    choose_spmm_strategy,
    dasp_spmm_large,
    reorder_rows,
)
from repro.matrices import load as load_matrix

#: Medium/irregular matrices where looped batching leaves the most on
#: the table (mc2depi's near-uniform 4-nnz rows sit just under the 2x
#: bar and are tracked by the nightly sweep instead).
GATE_SUITE = ("scircuit", "mac_econ_fwd500", "conf5_4-8x8-10")

GATE_K = 128
SPEEDUP_BAR = 2.0


def _plan(name):
    return DASPMatrix.from_csr(load_matrix(name))


def test_tuner_speedup_gate_k128():
    """Tuner-chosen strategy >= 2x modeled over looped at k=128."""
    rows = []
    for name in GATE_SUITE:
        strat = choose_spmm_strategy(_plan(name), GATE_K)
        rows.append((name, strat.name, strat.tile_k,
                     f"{strat.looped_s * 1e6:.1f}",
                     f"{strat.modeled_s * 1e6:.1f}",
                     f"{strat.speedup:.2f}x",
                     f"{strat.modeled_gflops:.1f}"))
        assert strat.name in ("tiled", "reordered"), name
        assert strat.speedup >= SPEEDUP_BAR, (
            f"{name}: {strat.speedup:.2f}x < {SPEEDUP_BAR}x")
    emit("spmm_largek_gate",
         markdown_table((f"matrix (k={GATE_K})", "strategy", "tile_k",
                         "looped us", "chosen us", "speedup", "GFlops"),
                        rows))


def test_reorder_cuts_padding_measurably():
    """Row reordering reduces MMA padding waste on >= 1 matrix class."""
    rows = []
    wins = 0
    for name in GATE_SUITE:
        ro = reorder_rows(load_matrix(name))
        rows.append((name, ro.candidate,
                     f"{ro.natural_stats.padding_waste:.2%}",
                     f"{ro.stats.padding_waste:.2%}",
                     f"{ro.padding_reduction:.2%}"))
        assert ro.stats.padding_slots <= ro.natural_stats.padding_slots
        if (not ro.is_identity
                and ro.stats.padding_slots < ro.natural_stats.padding_slots):
            wins += 1
    emit("spmm_largek_reorder",
         markdown_table(("matrix", "winning order", "natural padding",
                         "reordered padding", "padding slots cut"), rows))
    assert wins >= 1, "reordering never beat natural order on the suite"


def test_bitwise_identity_k32_smoke():
    """Tier-1-speed check: chosen strategy == column-wise dasp_spmv."""
    plan = _plan("scircuit")
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (plan.shape[1], 32))
    strat = choose_spmm_strategy(plan, 32)
    Y = dasp_spmm_large(plan, X, strat)
    ref = np.stack([dasp_spmv(plan, X[:, j]) for j in range(32)], axis=1)
    assert np.array_equal(Y, ref)


@pytest.mark.slow
def test_nightly_k_sweep_trajectory():
    """k in {8, 32, 128, 512} x 3 seeds; appends BENCH_spmm_largek.json."""
    from repro.bench import record_bench

    rows = []
    for name in GATE_SUITE:
        plan = _plan(name)
        for k in (8, 32, 128, 512):
            strat = choose_spmm_strategy(plan, k)
            ref = None
            walls = []
            for seed in (0, 1, 2):
                rng = np.random.default_rng(seed)
                X = rng.uniform(-1, 1, (plan.shape[1], k))
                t0 = time.perf_counter()
                Y = dasp_spmm_large(plan, X, strat)
                walls.append(time.perf_counter() - t0)
                if seed == 0:
                    ref = np.stack([dasp_spmv(plan, X[:, j])
                                    for j in range(k)], axis=1)
                    assert np.array_equal(Y, ref), (name, k)
                record_bench("spmm_largek", {
                    "matrix": name,
                    "k": k,
                    "seed": seed,
                    "strategy": strat.name,
                    "tile_k": strat.tile_k,
                    "modeled_s": strat.modeled_s,
                    "looped_s": strat.looped_s,
                    "modeled_speedup": strat.speedup,
                    "modeled_gflops": strat.modeled_gflops,
                    "wall_s": walls[-1],
                })
            rows.append((name, k, strat.name, f"{strat.speedup:.2f}x",
                         f"{min(walls) * 1e3:.1f}"))
        # large k must never model slower than looped
        assert all(choose_spmm_strategy(plan, k).speedup >= 1.0
                   for k in (8, 32, 128, 512))
    emit("spmm_largek_sweep",
         markdown_table(("matrix", "k", "strategy", "modeled speedup",
                         "best wall ms"), rows))
