"""Extension benchmark — DASP SpMM (multi-RHS) MMA utilization.

Not a paper figure: the paper observes that SpMV uses only the diagonal
of each MMA output (1/8 of the unit's work).  This benchmark quantifies
the natural extension: with a block of ``k`` right-hand sides the same
DASP layout feeds all eight B columns, so utilization rises ~k/8 until
``k = MMA_N`` saturates the units, while the matrix stream is shared.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table
from repro.core import DASPMatrix, dasp_spmm, mma_utilization, spmm_events
from repro.gpu import A100, estimate_time
from repro.matrices import suite_by_name


def test_spmm_utilization(benchmark, suite_fp64):
    csr = suite_fp64.matrices["cant"]
    dasp = DASPMatrix.from_csr(csr)
    rows = []
    times = {}
    for k in (1, 2, 4, 8, 16):
        u = mma_utilization(dasp, k)
        t = estimate_time(spmm_events(dasp, A100, k), A100).total
        times[k] = t
        rows.append((k, f"{u:.1%}", f"{t * 1e6:.1f}",
                     f"{t / (k * times[1]):.2f}" if k > 1 else "1.00"))
    emit("spmm_utilization",
         markdown_table(("k (RHS)", "MMA utilization", "modeled us",
                         "time vs k separate SpMVs"), rows))

    # shape: utilization grows to ~full at k=8; SpMM amortizes the stream
    assert mma_utilization(dasp, 8) > 6 * mma_utilization(dasp, 1)
    assert mma_utilization(dasp, 8) > 0.75
    assert times[8] < 0.6 * 8 * times[1]
    # verify functional correctness at k=8 on the way
    X = np.random.default_rng(0).standard_normal((csr.shape[1], 8))
    Y = dasp_spmm(dasp, X)
    ref = np.stack([csr.matvec(X[:, j]) for j in range(8)], axis=1)
    assert np.allclose(Y, ref, rtol=1e-9)

    benchmark(dasp_spmm, dasp, X)
