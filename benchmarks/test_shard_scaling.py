"""Sharding benchmark — row-sharded parallel SpMV vs the single-plan path.

Not a paper figure: quantifies `repro.shard` on the workload it exists
for — a long-row-heavy matrix served by a multi-worker server.  Row
shards execute on idle workers in parallel; the gather is pure
concatenation, so results stay byte-identical to the single-plan path
(asserted here on live traffic, not just in unit tests).

The gate: with 4 workers and ``shards="auto"``, modeled device time per
batch improves >= 2x over S = 1.  Wall-clock speedup is additionally
asserted when the host actually has >= 4 cores (CI containers often
expose 1, where thread fan-out cannot beat serial execution).
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.core import choose_shards
from repro.formats import CSRMatrix
from repro.serve import SpMVServer
from repro.shard import build_sharded_plan, sharded_batch_cost

WORKERS = 4
N_REQUESTS = 32
SEED = 2023


def _long_row_heavy(m=4096, n=6144, lo=280, hi=560, seed=SEED) -> CSRMatrix:
    """Every row is 'long' (> 256 nnz), the regime sharding targets."""
    rng = np.random.default_rng(seed)
    lens = rng.integers(lo, hi, m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    indices = np.concatenate(
        [np.sort(rng.choice(n, size=int(l), replace=False)) for l in lens])
    data = rng.uniform(-1.0, 1.0, indptr[-1])
    return CSRMatrix((m, n), indptr, indices, data)


def _serve(csr, xs, **kw):
    """Run every request through a 4-worker server; return (results, wall,
    modeled device seconds)."""
    with SpMVServer(max_batch=8, flush_timeout_s=0.002, workers=WORKERS,
                    **kw) as s:
        fp = s.register(csr)
        t0 = time.perf_counter()
        futs = [s.submit(fp, x) for x in xs]
        s.flush()
        ys = [f.result(timeout=60.0) for f in futs]
        wall = time.perf_counter() - t0
    return ys, wall, s.stats.device_busy_s


def test_shard_scaling():
    csr = _long_row_heavy()
    rng = np.random.default_rng(SEED + 1)
    xs = [rng.uniform(-1, 1, csr.shape[1]) for _ in range(N_REQUESTS)]

    # --- modeled, pure cost-model view -------------------------------
    tuned = choose_shards(csr, WORKERS, k=8)
    best = int(tuned.best_value)
    modeled_speedup = tuned.times[1] / tuned.times[best]
    cost = sharded_batch_cost(build_sharded_plan(csr, max(best, 2)), "A100",
                              k=8, workers=WORKERS)

    # --- live 4-worker server, S=1 vs auto ---------------------------
    base_ys, base_wall, base_dev = _serve(csr, xs)
    shard_ys, shard_wall, shard_dev = _serve(csr, xs, shards="auto")
    device_speedup = base_dev / shard_dev
    wall_speedup = base_wall / shard_wall

    emit("shard_scaling", markdown_table(
        ("metric", "S=1", f"S={best} (auto)", "speedup"),
        [("modeled batch time (us)", f"{tuned.times[1] * 1e6:.1f}",
          f"{tuned.times[best] * 1e6:.1f}", f"{modeled_speedup:.2f}x"),
         ("server device time (ms)", f"{base_dev * 1e3:.2f}",
          f"{shard_dev * 1e3:.2f}", f"{device_speedup:.2f}x"),
         ("server wall time (ms)", f"{base_wall * 1e3:.1f}",
          f"{shard_wall * 1e3:.1f}", f"{wall_speedup:.2f}x")])
        + f"\n\nhost cores: {os.cpu_count()}; per-shard modeled times "
        f"pack to a {cost.speedup:.2f}x makespan win at S={max(best, 2)}")
    record_bench("shard", {
        "best_shards": best,
        "modeled_speedup": modeled_speedup,
        "device_speedup": device_speedup,
        "wall_s": shard_wall,
    })

    # sharding must actually be chosen in this regime
    assert best >= 2, f"autotuner kept S=1 on a long-row-heavy matrix"
    # the gate: >= 2x modeled speedup for the 4-worker server
    assert modeled_speedup >= 2.0, \
        f"modeled shard speedup {modeled_speedup:.2f}x < 2x"
    assert device_speedup >= 2.0, \
        f"served (modeled device) speedup {device_speedup:.2f}x < 2x"
    # wall-clock only means something with real cores to fan out to
    if (os.cpu_count() or 1) >= 4:
        assert wall_speedup >= 2.0, \
            f"wall speedup {wall_speedup:.2f}x < 2x on a >=4-core host"

    # byte-identical results on live traffic — the determinism guarantee
    for y0, y1 in zip(base_ys, shard_ys):
        np.testing.assert_array_equal(y1, y0)
