"""Figure 2 — execution-time breakdown of the standard CSR SpMV.

The paper attributes CSR SpMV time to RANDOM ACCESS (25.1% average),
COMPUTE (21.1%) and MISCELLANEOUS (53.8%) over all 2893 matrices.  We
regenerate the distribution over the synthetic collection and check the
averages land in the same bands — in particular the paper's headline
observation that COMPUTE is a significant share (the motivation for
using MMA units at all).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import PAPER_AVERAGES, breakdown_averages, csr_breakdown
from repro.baselines import CSRScalarMethod
from repro.bench import markdown_table, paper_vs_measured


def test_fig02_breakdown(benchmark, collection_fp64, bench_matrix, bench_vector):
    rows = [csr_breakdown(csr, "A100", matrix_name=name)
            for name, csr in collection_fp64.matrices.items()]
    avg = breakdown_averages(rows)

    table = paper_vs_measured([
        ("RANDOM ACCESS share", f"{PAPER_AVERAGES['random_access']:.1%}",
         f"{avg['random_access']:.1%}", "band"),
        ("COMPUTE share", f"{PAPER_AVERAGES['compute']:.1%}",
         f"{avg['compute']:.1%}", "band"),
        ("MISCELLANEOUS share", f"{PAPER_AVERAGES['misc']:.1%}",
         f"{avg['misc']:.1%}", "band"),
    ])
    sample = markdown_table(
        ("matrix", "nnz", "random access", "compute", "misc"),
        [(r.matrix, r.nnz, f"{r.random_access:.2f}", f"{r.compute:.2f}",
          f"{r.misc:.2f}") for r in rows[:12]])
    emit("fig02_breakdown", table + "\n\nsample rows:\n" + sample)

    # Shape: compute is a substantial share (the paper's whole point),
    # misc dominates, and every row's shares sum to 1.
    assert 0.10 <= avg["compute"] <= 0.35
    assert 0.08 <= avg["random_access"] <= 0.40
    assert avg["misc"] > avg["compute"]
    for r in rows:
        assert r.random_access + r.compute + r.misc == 1.0 or \
            abs(r.random_access + r.compute + r.misc - 1.0) < 1e-9

    method = CSRScalarMethod()
    plan = method.prepare(bench_matrix)
    y = benchmark(method.run, plan, bench_vector)
    assert np.allclose(y, bench_matrix.matvec(bench_vector))
