"""Figure 12 — row / nonzero shares per DASP category (21 matrices).

Checks the classification shapes the paper highlights: mc2depi is all
short rows, FEM matrices all medium, quantum-chemistry matrices carry a
large long-row nonzero share despite few long rows, and cop20k_A's empty
rows are visible.
"""

from benchmarks.conftest import emit
from repro.bench import markdown_table, results_path, save_csv
from repro.core import DASPMatrix
from repro.matrices import category_ratios, representative_suite


def test_fig12_categories(benchmark, suite_fp64):
    entries = representative_suite()
    ratios = {}
    rows = []
    for e in entries:
        csr = suite_fp64.matrices[e.name]
        c = category_ratios(csr)
        ratios[e.name] = c
        rows.append((e.name,
                     f"{c.row_long:.2f}", f"{c.row_medium:.2f}",
                     f"{c.row_short:.2f}", f"{c.row_empty:.2f}",
                     f"{c.nnz_long:.2f}", f"{c.nnz_medium:.2f}",
                     f"{c.nnz_short:.2f}"))
    table = markdown_table(
        ("matrix", "rows long", "rows medium", "rows short", "rows empty",
         "nnz long", "nnz medium", "nnz short"), rows)
    emit("fig12_categories", table)
    save_csv(results_path("fig12_categories.csv"),
             ("matrix", "row_long", "row_medium", "row_short", "row_empty",
              "nnz_long", "nnz_medium", "nnz_short"),
             [(n, c.row_long, c.row_medium, c.row_short, c.row_empty,
               c.nnz_long, c.nnz_medium, c.nnz_short)
              for n, c in ratios.items()])

    # --- Figure 12's qualitative shapes --------------------------------
    assert ratios["mc2depi"].row_short > 0.99          # all short
    assert ratios["webbase-1M"].row_short > 0.7        # short dominated
    for name in ("pwtk", "cant", "consph", "shipsec1", "rma10", "pdb1HYS"):
        assert ratios[name].row_medium > 0.95, name    # all medium
    for name in ("Si41Ge41H72", "Ga41As41H72", "mip1"):
        # few long rows but a visible long-row nonzero share
        assert ratios[name].nnz_long > 2 * ratios[name].row_long, name
    assert ratios["cop20k_A"].row_empty > 0.1          # the empty rows

    # classification inside DASPMatrix must agree with the ratios
    csr = suite_fp64.matrices["dc2"]
    dasp = benchmark(DASPMatrix.from_csr, csr)
    counts = dasp.classification.counts()
    assert counts["short"] / csr.shape[0] == ratios["dc2"].row_short
