"""Serving benchmark — batched SpMM serving vs request-at-a-time SpMV.

Not a paper figure: quantifies the `repro.serve` subsystem's two levers
on a synthetic open-loop workload (Poisson arrivals, Zipf popularity
over representative-suite matrices):

* **batching** — coalescing up to MMA_N = 8 concurrent requests into
  one `dasp_spmm` call amortizes the matrix stream, the kernel
  launches and the MMA issue slots across the batch (target: >= 4x
  modeled device-time throughput at batch size 8);
* **plan caching** — the LRU plan registry pays the paper's Figure 13
  preprocessing cost once per matrix instead of once per batch.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.serve import WorkloadConfig, run_workload

#: Pool drawn from the representative suite (Zipf-ranked in this order).
POOL_MATRICES = 4
N_REQUESTS = 2400
SEED = 2023


def _cfg(**overrides) -> WorkloadConfig:
    base = dict(n_requests=N_REQUESTS, n_matrices=POOL_MATRICES, seed=SEED)
    base.update(overrides)
    return WorkloadConfig(**base)


def _report_rows(name, stats):
    pct = stats.latency_percentiles()
    hist = " ".join(f"{k}:{stats.batch_hist[k]}"
                    for k in sorted(stats.batch_hist))
    return (name, f"{stats.mean_batch_size:.2f}", hist,
            f"{stats.cache_hit_rate:.1%}",
            f"{stats.throughput_rps:,.0f}", f"{stats.goodput_rps:,.0f}",
            f"{pct[50] * 1e6:.0f} / {pct[95] * 1e6:.0f} / {pct[99] * 1e6:.0f}",
            f"{stats.mma_utilization:.1%}")


def test_batched_serving_throughput(benchmark):
    import time

    t0 = time.perf_counter()
    batched = run_workload(_cfg())
    wall_s = time.perf_counter() - t0
    unbatched = run_workload(_cfg(max_batch=1, queue_depth=10**9))

    speedup = batched.throughput_rps / unbatched.throughput_rps
    rows = [_report_rows("request-at-a-time", unbatched),
            _report_rows("batched (k<=8)", batched)]
    table = markdown_table(
        ("serving mode", "mean batch", "batch-size histogram",
         "cache hit rate", "req/s (kernel)", "req/s (goodput)",
         "latency p50/p95/p99 (us)", "MMA util"), rows)
    emit("serve_throughput",
         table + f"\n\nbatched vs request-at-a-time throughput: "
         f"{speedup:.2f}x (target >= 4x)")
    pct = batched.latency_percentiles()
    record_bench("serve", {
        "throughput_rps": batched.throughput_rps,
        "goodput_rps": batched.goodput_rps,
        "batching_speedup": speedup,
        "p50_latency_s": pct[50], "p99_latency_s": pct[99],
        "mma_utilization": batched.mma_utilization,
        "wall_s": round(wall_s, 3),
    })

    # the tentpole claim: batching to k = MMA_N multiplies modeled
    # device-time throughput >= 4x on the same traffic
    assert speedup >= 4.0, f"batching speedup {speedup:.2f}x < 4x"
    # saturating open-loop traffic fills batches and the MMA units
    assert batched.mean_batch_size > 6.0
    assert batched.mma_utilization > 0.8
    assert unbatched.mma_utilization < 0.2
    # every reported metric is present and coherent
    pct = batched.latency_percentiles()
    assert pct[50] <= pct[95] <= pct[99]
    assert sum(k * c for k, c in batched.batch_hist.items()) \
        == batched.n_completed

    benchmark(run_workload, _cfg(n_requests=400))


def test_plan_cache_skips_preprocessing():
    cached = run_workload(_cfg())
    uncached = run_workload(_cfg(plan_cache=False))

    emit("serve_plan_cache", markdown_table(
        ("mode", "cache hits", "cache misses", "preprocess ms",
         "req/s (goodput)"),
        [("plan cache", cached.cache_hits, cached.cache_misses,
          f"{cached.preprocess_s * 1e3:.2f}", f"{cached.goodput_rps:,.0f}"),
         ("re-preprocess", uncached.cache_hits, uncached.cache_misses,
          f"{uncached.preprocess_s * 1e3:.2f}",
          f"{uncached.goodput_rps:,.0f}")]))

    # hit path skips preprocessing: it is charged once per distinct
    # matrix, not once per batch
    assert cached.cache_misses == POOL_MATRICES
    assert cached.cache_hits == cached.n_batches - POOL_MATRICES
    assert cached.cache_hit_rate > 0.9
    per_matrix = cached.preprocess_s / POOL_MATRICES
    assert uncached.preprocess_s > 10 * cached.preprocess_s
    assert cached.preprocess_s < per_matrix * (POOL_MATRICES + 1)
    # and that translates into end-to-end goodput
    assert cached.goodput_rps > 2.0 * uncached.goodput_rps


def test_lru_eviction_under_pressure():
    """A budget sized for ~2 of the 4 plans forces evictions yet keeps
    the server functional (popular plans stay resident)."""
    from repro.core import DASPMatrix
    from repro.matrices import representative_suite
    from repro.serve import plan_nbytes

    sizes = [plan_nbytes(DASPMatrix.from_csr(
        e.matrix().astype(np.float64)))
        for e in representative_suite()[:POOL_MATRICES]]
    tight = run_workload(_cfg(cache_budget_bytes=int(sum(sizes) * 0.5)))
    full = run_workload(_cfg())
    assert tight.cache_evictions > 0
    assert full.cache_evictions == 0
    assert tight.n_completed + tight.n_rejected == tight.n_requests
    # interleaved Zipf traffic thrashes a half-size LRU: hits still
    # happen on same-matrix batch runs, but far fewer than with a
    # budget that holds the whole pool
    assert 0.0 < tight.cache_hit_rate < full.cache_hit_rate
    # every result is still served correctly (driver asserts internally)
    assert tight.n_completed > 0
