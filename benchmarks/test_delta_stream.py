"""Delta-stream benchmark gate — patching vs rebuild-per-update.

The `repro.delta` subsystem's three headline claims, each a hard gate:

* **patch advantage** — on a mixed update:read stream with a 10%
  structural mix, modeled preprocessing time via patching is >= 3x
  lower than rebuilding the plan on every update (the counterfactual
  both numbers are accumulated for in the plan registry);
* **bounded debt** — overlay growth is self-limiting: over >= 10k
  random deltas the rebuild-debt metric never exceeds the compaction
  threshold, compactions fire, and the final patched plan still
  matches a from-scratch rebuild bitwise;
* **serving parity** — updates interleaved with reads under the
  chaos/deadline machinery lose no futures and keep the in-deadline
  rate within 5% of a static-matrix run at the same operating point.

Appends the headline numbers to ``results/BENCH_delta.json`` so the
nightly delta-stream lane has a diffable trajectory.
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.cluster.driver import ClusterConfig, run_cluster_workload
from repro.core import DASPMatrix, dasp_spmv
from repro.core.delta import (DEFAULT_COMPACT_THRESHOLD, apply_delta_to_csr,
                              apply_update, random_delta, rebuild_debt)
from repro.matrices import synthetic_collection
from repro.overload import HedgeConfig, OverloadConfig, RetryBudgetConfig
from repro.serve import WorkloadConfig, run_workload

SEED = 11
POOL = 3
#: The acceptance mix: 10% of arrival slots carry a delta, 10% of
#: those deltas are structural.
UPDATE_MIX = 0.10
STRUCTURAL_FRAC = 0.10


def _entries():
    return synthetic_collection(POOL, seed=5)


def test_patch_vs_rebuild_advantage():
    """Modeled preprocessing via patching >= 3x cheaper than
    rebuild-per-update at the 10% structural mix."""
    t0 = time.perf_counter()
    stats = run_workload(WorkloadConfig(
        entries=_entries(), n_matrices=POOL, n_requests=4000, seed=SEED,
        update_mix=UPDATE_MIX, structural_frac=STRUCTURAL_FRAC))
    wall_s = time.perf_counter() - t0

    patch_s = stats.delta_patch_modeled_s
    rebuild_s = stats.delta_rebuild_modeled_s
    advantage = rebuild_s / patch_s
    n_updates = stats.delta_value_updates + stats.delta_structural_updates

    emit("delta_stream", markdown_table(
        ("metric", "value"),
        [("updates (value / structural)",
          f"{stats.delta_value_updates:,} / "
          f"{stats.delta_structural_updates:,}"),
         ("compactions", f"{stats.delta_compactions:,}"),
         ("modeled patch time", f"{patch_s * 1e3:.3f} ms"),
         ("modeled rebuild-per-update", f"{rebuild_s * 1e3:.3f} ms"),
         ("patch advantage", f"{advantage:.1f}x (target >= 3x)")]))
    record_bench("delta", {
        "patch_advantage": round(advantage, 2),
        "patch_modeled_s": patch_s, "rebuild_modeled_s": rebuild_s,
        "n_value_updates": stats.delta_value_updates,
        "n_structural_updates": stats.delta_structural_updates,
        "n_compactions": stats.delta_compactions,
        "wall_s": round(wall_s, 3),
    })

    assert n_updates > 100  # the mix actually exercised the stream
    assert stats.delta_structural_updates > 0
    assert advantage >= 3.0, \
        f"patch advantage {advantage:.2f}x < 3x (patch {patch_s:.6f}s " \
        f"vs rebuild {rebuild_s:.6f}s)"


def test_compaction_debt_bounded():
    """No unbounded overlay growth: rebuild debt stays under the
    compaction threshold across >= 10k updates, and the survivor plan
    is still bitwise-correct."""
    csr = _entries()[0].matrix().astype(np.float64)
    plan = DASPMatrix.from_csr(csr)
    rng = np.random.default_rng(SEED)
    ref = csr
    max_debt, n_compact, n_structural = 0.0, 0, 0
    N = 10_000
    for _ in range(N):
        structural = bool(rng.random() < STRUCTURAL_FRAC)
        d = random_delta(ref, rng, structural=structural, n_entries=4)
        ref = apply_delta_to_csr(ref, d)
        plan, info = apply_update(plan, d)
        n_compact += int(info.compacted)
        n_structural += int(structural)
        debt = rebuild_debt(plan)
        max_debt = max(max_debt, debt)
        # auto-compaction keeps post-update debt at or under threshold
        assert debt <= DEFAULT_COMPACT_THRESHOLD + 1e-12

    emit("delta_debt", markdown_table(
        ("metric", "value"),
        [("updates applied", f"{N:,} ({n_structural:,} structural)"),
         ("compactions", f"{n_compact:,}"),
         ("max rebuild debt",
          f"{max_debt:.3f} (threshold {DEFAULT_COMPACT_THRESHOLD})")]))

    assert n_compact > 0          # debt actually hit the trigger
    assert 0.0 < max_debt <= DEFAULT_COMPACT_THRESHOLD + 1e-12
    # survivor of 10k patches == from-scratch rebuild, bitwise
    x = np.random.default_rng(1).standard_normal(csr.shape[1])
    fresh = DASPMatrix.from_csr(ref)
    np.testing.assert_array_equal(dasp_spmv(plan, x), dasp_spmv(fresh, x))


def test_update_stream_chaos_deadline_parity():
    """Updates under chaos + deadlines: zero lost futures, in-deadline
    rate within 5% of the static-matrix run at the same (moderate)
    operating point."""
    base = dict(n_replicas=4, n_requests=2000, entries=_entries(),
                n_matrices=POOL, seed=SEED, rate_rps=100_000,
                deadline_s=0.005, partition_replica=1,
                partition_window=(0.3, 0.6),
                overload=OverloadConfig(retry_budget=RetryBudgetConfig(),
                                        hedge=HedgeConfig()))
    static = run_cluster_workload(ClusterConfig(**base))
    updated = run_cluster_workload(ClusterConfig(
        update_mix=UPDATE_MIX, structural_frac=STRUCTURAL_FRAC, **base))

    gap = static.in_deadline_fraction - updated.in_deadline_fraction
    emit("delta_chaos_parity", markdown_table(
        ("run", "in-deadline", "lost futures", "updates"),
        [("static matrices", f"{static.in_deadline_fraction:.4f}",
          str(static.lost_requests), "0"),
         ("update stream", f"{updated.in_deadline_fraction:.4f}",
          str(updated.lost_requests), f"{updated.n_updates:,}")]))
    record_bench("delta", {
        "scenario": "chaos_parity",
        "in_deadline_static": static.in_deadline_fraction,
        "in_deadline_updates": updated.in_deadline_fraction,
        "n_updates": updated.n_updates,
    })

    assert updated.n_updates > 0
    assert static.lost_requests == 0
    assert updated.lost_requests == 0
    assert abs(gap) <= 0.05, \
        f"in-deadline parity gap {gap:.4f} exceeds 5% " \
        f"(static {static.in_deadline_fraction:.4f} vs " \
        f"updates {updated.in_deadline_fraction:.4f})"
