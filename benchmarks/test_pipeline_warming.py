"""Pipelined execution + speculative warming benchmark.

Not a paper figure: quantifies the `repro.pipeline` subsystem.  The
paper's Figure 13 economics price CSR -> DASP preprocessing at
tens-to-hundreds of SpMVs; a serving replica that pays that cost (or
even the cheaper `.daspz` load) *on the device clock* stalls every
queued request behind each first-touch matrix.  The async pipeline
moves plan acquisition onto a modeled prefetch lane — batches park
until their plan is staged while the device keeps draining warm
traffic — and the speculative warmer watches the observed popularity
skew to prebuild hot matrices before their first request.

Two identical virtual-time workloads over a 32-matrix synthetic suite
with a populated plan store:

* **off** — today's synchronous path: every first touch stalls the
  device with the modeled load/rebuild;
* **on** — ``pipeline=PipelineConfig(lanes=4)`` plus a low-threshold
  warmer: acquisition overlaps compute, cold batches park instead of
  blocking the queue.

Gate: pipeline-on cuts the modeled p99 latency of the cold-heavy phase
by >= 3x with no throughput regression, while completing identical
traffic (the same requests, batches, and kernel work — results are
bitwise-equal by construction since the per-batch kernel times and the
numerics are untouched).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench import markdown_table, record_bench
from repro.matrices import synthetic_collection
from repro.pipeline import PipelineConfig, WarmerConfig
from repro.serve import WorkloadConfig, run_workload

N_MATRICES = 32
N_REQUESTS = 960
SEED = 3
LANES = 4
WARMER = dict(min_observed=4, max_per_tick=8)


def _cfg(store, **overrides) -> WorkloadConfig:
    base = dict(n_requests=N_REQUESTS, seed=SEED, zipf_s=0.3,
                entries=synthetic_collection(N_MATRICES, seed=5),
                store=store)
    base.update(overrides)
    return WorkloadConfig(**base)


@pytest.fixture(scope="module")
def off_vs_on(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("pipeline_store")
    run_workload(_cfg(store_dir))           # publish the 32 artifacts
    off = run_workload(_cfg(store_dir))
    on = run_workload(_cfg(store_dir, pipeline=PipelineConfig(lanes=LANES),
                           warmer=WarmerConfig(**WARMER)))
    return off, on


def test_pipeline_cold_p99_gate(off_vs_on):
    off, on = off_vs_on
    off_p = off.latency_percentiles((50, 95, 99))
    on_p = on.latency_percentiles((50, 95, 99))
    speedup = off_p[99] / on_p[99]

    emit("pipeline_warming", markdown_table(
        ("run", "p50 (us)", "p99 (us)", "goodput req/s",
         "parked", "warms"),
        [("sync (off)", f"{off_p[50] * 1e6:.1f}", f"{off_p[99] * 1e6:.1f}",
          f"{off.goodput_rps:,.0f}", "-", "-"),
         ("pipelined + warmer", f"{on_p[50] * 1e6:.1f}",
          f"{on_p[99] * 1e6:.1f}", f"{on.goodput_rps:,.0f}",
          str(on.parked_batches), str(on.warm_loads + on.warm_builds))])
        + f"\n\ncold-heavy p99 reduction: {speedup:.2f}x (target >= 3x)")
    record_bench("pipeline", {
        "seed": SEED,
        "warmer": True,
        "p99_speedup": speedup,
        "off_p99_us": off_p[99] * 1e6,
        "on_p99_us": on_p[99] * 1e6,
        "off_goodput_rps": off.goodput_rps,
        "on_goodput_rps": on.goodput_rps,
        "parked_batches": on.parked_batches,
        "warm_loads": on.warm_loads,
        "warm_builds": on.warm_builds,
    })

    # the tentpole gate: >= 3x modeled p99 reduction on the cold-heavy
    # workload, with no throughput regression
    assert speedup >= 3.0, f"pipeline p99 speedup {speedup:.2f}x < 3x"
    # no throughput regression (tolerate float summation-order jitter)
    assert on.goodput_rps >= off.goodput_rps * (1.0 - 1e-9)
    assert on.duration_s <= off.duration_s * (1.0 + 1e-9)


def test_pipeline_preserves_traffic_and_work(off_vs_on):
    """Pipelining moves *when* acquisition is charged, never *what*
    runs: identical requests, batches, and kernel work (the modeled
    per-batch times are memoized identically, so the scattered results
    are bitwise-equal by construction)."""
    off, on = off_vs_on
    assert on.n_completed == off.n_completed == N_REQUESTS
    assert on.n_failed == off.n_failed == 0
    assert on.n_batches == off.n_batches
    assert on.batch_hist == off.batch_hist
    assert on.device_busy_s == pytest.approx(off.device_busy_s, rel=1e-12)
    assert on.parked_batches > 0


def test_pipeline_deterministic(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("pipeline_det")
    run_workload(_cfg(store_dir))
    kw = dict(pipeline=PipelineConfig(lanes=LANES),
              warmer=WarmerConfig(**WARMER))
    a = run_workload(_cfg(store_dir, **kw))
    b = run_workload(_cfg(store_dir, **kw))
    assert a.latencies_s == b.latencies_s
    assert a.duration_s == b.duration_s


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 11, 42])
@pytest.mark.parametrize("warmer_on", [False, True])
def test_pipeline_sweep(tmp_path_factory, seed, warmer_on):
    """Nightly-scale sweep: the p99 win holds across seeds, with and
    without the speculative warmer (the pipeline alone still parks cold
    batches off the device clock)."""
    store_dir = tmp_path_factory.mktemp(f"pipeline_sweep_{seed}_{warmer_on}")
    run_workload(_cfg(store_dir, seed=seed))
    off = run_workload(_cfg(store_dir, seed=seed))
    on = run_workload(_cfg(
        store_dir, seed=seed, pipeline=PipelineConfig(lanes=LANES),
        warmer=WarmerConfig(**WARMER) if warmer_on else False))
    speedup = (off.latency_percentiles((99,))[99]
               / on.latency_percentiles((99,))[99])
    record_bench("pipeline", {
        "seed": seed,
        "warmer": warmer_on,
        "p99_speedup": speedup,
        "off_goodput_rps": off.goodput_rps,
        "on_goodput_rps": on.goodput_rps,
        "parked_batches": on.parked_batches,
        "warm_loads": on.warm_loads,
        "warm_builds": on.warm_builds,
    })
    assert speedup >= 3.0
    assert on.goodput_rps >= off.goodput_rps * (1.0 - 1e-9)
    assert on.n_completed == off.n_completed
