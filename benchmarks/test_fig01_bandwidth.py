"""Figure 1 — bandwidth throughput of CSR5 / cuSPARSE / DASP vs peaks.

The paper plots effective bandwidth (useful CSR bytes / time) for the
202 largest SuiteSparse matrices (>= 1e7 nnz) against the A100's
theoretical (1555 GB/s) and measured-Triad peaks.  We use the largest
quartile of the synthetic collection (sizes are scaled down ~20x with the
matrices).  Expected shape: DASP's bandwidth distribution sits above both
baselines and approaches (without exceeding) the Triad line.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import bandwidth_points, peak_lines
from repro.bench import markdown_table, run_comparison, save_csv, results_path
from repro.core import DASPMatrix, dasp_spmv
from repro.matrices import fem_blocked, grid2d, power_law, quantum_chem
from repro.matrices.collection import CollectionEntry

#: Large matrices standing in for the paper's >= 1e7-nnz filter (scaled
#: ~5x down; big enough to saturate the modeled bandwidth ramp).
LARGE_ENTRIES = [
    CollectionEntry("large_fem_1", "fem", lambda: g_fem(45000, 55, 1)),
    CollectionEntry("large_fem_2", "fem", lambda: g_fem(30000, 90, 2)),
    CollectionEntry("large_qchem", "quantum", lambda: quantum_chem(24000, 85, seed=3)),
    CollectionEntry("large_grid", "grid", lambda: grid2d(700, 700, seed=4)),
    CollectionEntry("large_power", "power_law",
                    lambda: power_law(300000, 8, alpha=1.7, seed=5)),
    CollectionEntry("large_fem_3", "fem", lambda: g_fem(60000, 40, 6)),
]


def g_fem(m, mean, seed):
    return fem_blocked(m, mean, seed=seed)


def test_fig01_bandwidth(benchmark, collection_fp64, bench_matrix, bench_vector):
    res = run_comparison(LARGE_ENTRIES, device="A100",
                         methods=("CSR5", "cuSPARSE-CSR", "DASP"),
                         keep_matrices=True)
    times = res.times
    points = bandwidth_points(times, res.matrices,
                              methods=("CSR5", "cuSPARSE-CSR", "DASP"))
    peaks = peak_lines("A100")

    by_method = {}
    for p in points:
        by_method.setdefault(p.method, []).append(p.gbs)
    rows = [(m, len(v), f"{np.mean(v):.0f}", f"{np.median(v):.0f}",
             f"{np.max(v):.0f}") for m, v in by_method.items()]
    table = markdown_table(("method", "matrices", "mean GB/s",
                            "median GB/s", "max GB/s"), rows)
    table += (f"\n\ntheoretical peak: {peaks['theoretical']:.0f} GB/s, "
              f"measured Triad: {peaks['triad']:.0f} GB/s")
    emit("fig01_bandwidth", table)
    save_csv(results_path("fig01_bandwidth.csv"),
             ("matrix", "method", "nnz", "gbs"),
             [(p.matrix, p.method, p.nnz, p.gbs) for p in points])

    # Shape assertions (paper: DASP closest to the Triad peak).
    assert np.mean(by_method["DASP"]) > np.mean(by_method["CSR5"])
    assert np.mean(by_method["DASP"]) > np.mean(by_method["cuSPARSE-CSR"])
    assert max(by_method["DASP"]) <= peaks["triad"] * 1.02
    # DASP's best matrices approach the Triad line
    assert max(by_method["DASP"]) > 0.5 * peaks["triad"]

    dasp = DASPMatrix.from_csr(bench_matrix)
    benchmark(dasp_spmv, dasp, bench_vector)
