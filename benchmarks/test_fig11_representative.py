"""Figure 11 — per-matrix comparison on the 21 representative matrices.

Regenerates the FP64 (A100) and FP16 (A100/H800) bar data for Table 2's
matrices and checks the paper's qualitative claims: short-row-dominated
matrices (mc2depi, webbase-1M, ASIC_680k) beat every baseline, the
medium-row FEM group performs strongly, and specific speedup pairs cited
in Section 4.3 hold directionally.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench import markdown_table, results_path, save_csv
from repro.core import DASPMethod
from repro.matrices import representative_suite

REPRESENTATIVE = {e.name for e in representative_suite()}


def test_fig11_representative(benchmark, suite_fp64, suite_fp16_a100,
                              suite_fp16_h800, bench_matrix, bench_vector):
    res = suite_fp64
    methods = list(res.times)
    rows = []
    for name in sorted(REPRESENTATIVE):
        gflops = [2.0 * res.nnz[name] / res.times[m][name] / 1e9
                  for m in methods]
        best = methods[int(np.argmax(gflops))]
        rows.append((name, *(f"{g:.1f}" for g in gflops), best))
    table = markdown_table(("matrix", *methods, "best"), rows)
    emit("fig11_representative_fp64", table)

    fp16_rows = []
    for name in sorted(REPRESENTATIVE):
        a = suite_fp16_a100.times["cuSPARSE-CSR"][name] / suite_fp16_a100.times["DASP"][name]
        h = suite_fp16_h800.times["cuSPARSE-CSR"][name] / suite_fp16_h800.times["DASP"][name]
        fp16_rows.append((name, f"{a:.2f}x", f"{h:.2f}x"))
    emit("fig11_representative_fp16",
         markdown_table(("matrix", "A100 speedup vs cuSPARSE",
                         "H800 speedup vs cuSPARSE"), fp16_rows))
    save_csv(results_path("fig11_representative.csv"),
             ("matrix", *[f"{m}_s" for m in methods]),
             [(n, *(res.times[m][n] for m in methods))
              for n in sorted(REPRESENTATIVE)])

    # --- shape assertions (Section 4.3 claims) ------------------------
    def speedup(name, base):
        return res.times[base][name] / res.times["DASP"][name]

    # short-row matrices "completely outperform the comparison methods"
    for name in ("mc2depi", "webbase-1M", "ASIC_680k"):
        for base in ("CSR5", "TileSpMV", "LSRB-CSR", "cuSPARSE-BSR",
                     "cuSPARSE-CSR"):
            assert speedup(name, base) > 1.0, (name, base)

    # medium-row FEM matrices beat the general-purpose baselines
    for name in ("rma10", "cant", "cop20k_A", "consph", "shipsec1", "pwtk"):
        assert speedup(name, "CSR5") > 1.0, name
        assert speedup(name, "cuSPARSE-CSR") > 1.0, name

    # DASP is best on the large majority of the 21 matrices
    wins = sum(1 for name in REPRESENTATIVE
               if min(res.times[m][name] for m in methods)
               == res.times["DASP"][name])
    assert wins >= 0.7 * len(REPRESENTATIVE)

    # mixed-category matrices do not suffer (circuit5M, dc2 beat CSR5).
    # The paper's 66.89x dc2-vs-BSR blowup needs the full-scale 114k-nnz
    # dense rows; at ~1/6 scale we assert the direction only (the BSR
    # fill-in catastrophe itself is asserted in fig10's max speedup).
    assert speedup("circuit5M", "CSR5") > 1.0
    assert speedup("dc2", "cuSPARSE-BSR") > 1.0

    method = DASPMethod()
    plan = method.prepare(bench_matrix)
    benchmark(method.run, plan, bench_vector)
